"""Unit tests for terms: variables, constants, coercion, freshening."""

import pytest

from repro.datalog.terms import (
    Constant,
    Variable,
    fresh_variable,
    is_variable_name,
    make_term,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Xs")) == "Xs"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_repr_round_trips_name(self):
        assert "X1" in repr(Variable("X1"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("tom") == Constant("tom")
        assert Constant("tom") != Constant("sue")
        assert Constant(3) != Constant("3")

    def test_str_plain_identifier(self):
        assert str(Constant("tom")) == "tom"

    def test_str_integer(self):
        assert str(Constant(42)) == "42"

    def test_str_quotes_uppercase_value(self):
        # An uppercase string value must be quoted or it would re-parse
        # as a variable.
        assert str(Constant("Tom")) == "'Tom'"

    def test_str_quotes_non_identifier(self):
        assert str(Constant("two words")) == "'two words'"

    def test_str_escapes_quotes(self):
        assert str(Constant("o'brien")) == "'o\\'brien'"


class TestIsVariableName:
    @pytest.mark.parametrize("name", ["X", "Xyz", "_", "_foo", "W1"])
    def test_variables(self, name):
        assert is_variable_name(name)

    @pytest.mark.parametrize("name", ["x", "tom", "t0", ""])
    def test_non_variables(self, name):
        assert not is_variable_name(name)


class TestMakeTerm:
    def test_uppercase_string_is_variable(self):
        assert make_term("X") == Variable("X")

    def test_underscore_string_is_variable(self):
        assert make_term("_x") == Variable("_x")

    def test_lowercase_string_is_constant(self):
        assert make_term("tom") == Constant("tom")

    def test_int_is_constant(self):
        assert make_term(7) == Constant(7)

    def test_terms_pass_through(self):
        v = Variable("X")
        assert make_term(v) is v

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            make_term(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            make_term(3.14)


class TestFreshVariable:
    def test_appends_subscript(self):
        assert fresh_variable(Variable("W"), 3) == Variable("W_3")

    def test_distinct_subscripts_distinct_variables(self):
        base = Variable("W")
        assert fresh_variable(base, 1) != fresh_variable(base, 2)

    def test_result_is_still_a_variable_name(self):
        assert is_variable_name(fresh_variable(Variable("W"), 9).name)
