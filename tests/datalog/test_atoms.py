"""Unit tests for atoms and the connectivity machinery (Defs 2.1/2.2)."""

import pytest

from repro.datalog.atoms import (
    Atom,
    atom,
    connected_components,
    shared_variables,
)
from repro.datalog.terms import Constant, Variable


class TestAtomBasics:
    def test_constructor_coercion(self):
        a = atom("friend", "X", "tom")
        assert a.predicate == "friend"
        assert a.args == (Variable("X"), Constant("tom"))

    def test_arity(self):
        assert atom("p", "X", "Y", "Z").arity == 3

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", ())

    def test_variables_in_order_with_duplicates(self):
        a = atom("p", "X", "tom", "Y", "X")
        assert a.variables() == (Variable("X"), Variable("Y"), Variable("X"))

    def test_variable_set(self):
        a = atom("p", "X", "tom", "Y", "X")
        assert a.variable_set() == {Variable("X"), Variable("Y")}

    def test_constants(self):
        a = atom("p", "X", "tom", 3)
        assert a.constants() == (Constant("tom"), Constant(3))

    def test_is_ground(self):
        assert atom("p", "a", "b").is_ground()
        assert not atom("p", "a", "X").is_ground()

    def test_positions_of(self):
        a = atom("p", "X", "Y", "X")
        assert a.positions_of(Variable("X")) == (0, 2)
        assert a.positions_of(Variable("Z")) == ()

    def test_has_repeated_variables(self):
        assert atom("p", "X", "X").has_repeated_variables()
        assert not atom("p", "X", "Y").has_repeated_variables()
        assert not atom("p", "a", "a").has_repeated_variables()

    def test_str(self):
        assert str(atom("buys", "X", "camera")) == "buys(X, camera)"


class TestSubstitute:
    def test_substitutes_variables(self):
        a = atom("p", "X", "Y")
        result = a.substitute({Variable("X"): Constant("tom")})
        assert result == atom("p", "tom", "Y")

    def test_leaves_constants_alone(self):
        a = atom("p", "tom", "X")
        result = a.substitute({Variable("X"): Variable("Z")})
        assert result == atom("p", "tom", "Z")

    def test_original_unchanged(self):
        a = atom("p", "X")
        a.substitute({Variable("X"): Constant("c")})
        assert a == atom("p", "X")


class TestRename:
    def test_appends_suffix_to_every_variable(self):
        a = atom("p", "X", "tom", "Y")
        assert a.rename(4) == atom("p", "X_4", "tom", "Y_4")


class TestSharedVariables:
    def test_shared(self):
        assert shared_variables(atom("p", "X", "Y"), atom("q", "Y", "Z")) == {
            Variable("Y")
        }

    def test_disjoint(self):
        assert shared_variables(atom("p", "X"), atom("q", "Z")) == frozenset()


class TestConnectedComponents:
    def test_example_2_2_single_component(self):
        # a(X, Z0) a(Z0, Z1) b(Z1, Y) -- one maximal connected set of 3.
        atoms = [
            atom("a", "X", "Z0"),
            atom("a", "Z0", "Z1"),
            atom("b", "Z1", "Y"),
        ]
        components = connected_components(atoms)
        assert len(components) == 1
        assert components[0] == atoms

    def test_example_2_2_two_components(self):
        # a(X, Y) b(Y, Z) c(W) -- components of size 2 and 1.
        atoms = [atom("a", "X", "Y"), atom("b", "Y", "Z"), atom("c", "W")]
        components = connected_components(atoms)
        assert [len(c) for c in components] == [2, 1]

    def test_transitive_connection(self):
        # p and r share no variable directly but connect through q.
        atoms = [atom("p", "X"), atom("q", "X", "Y"), atom("r", "Y")]
        assert len(connected_components(atoms)) == 1

    def test_ground_atoms_are_singletons(self):
        atoms = [atom("p", "a"), atom("p", "b")]
        assert [len(c) for c in connected_components(atoms)] == [1, 1]

    def test_empty(self):
        assert connected_components([]) == []

    def test_order_preserved(self):
        atoms = [atom("a", "X"), atom("b", "Y"), atom("c", "X")]
        components = connected_components(atoms)
        assert components[0] == [atom("a", "X"), atom("c", "X")]
        assert components[1] == [atom("b", "Y")]
