"""Unit tests for matching and unification."""

from repro.datalog.atoms import atom
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import apply_to_term, compose, match_atom, unify_atoms


class TestMatchAtom:
    def test_binds_variables(self):
        assert match_atom(atom("f", "X", "tom"), ("sue", "tom")) == {
            Variable("X"): Constant("sue")
        }

    def test_constant_mismatch(self):
        assert match_atom(atom("f", "X", "tom"), ("sue", "ann")) is None

    def test_repeated_variable_consistent(self):
        assert match_atom(atom("f", "X", "X"), ("a", "a")) == {
            Variable("X"): Constant("a")
        }

    def test_repeated_variable_inconsistent(self):
        assert match_atom(atom("f", "X", "X"), ("a", "b")) is None

    def test_extends_existing_bindings(self):
        prior = {Variable("X"): Constant("a")}
        result = match_atom(atom("f", "X", "Y"), ("a", "b"), prior)
        assert result == {
            Variable("X"): Constant("a"),
            Variable("Y"): Constant("b"),
        }

    def test_conflicts_with_existing_bindings(self):
        prior = {Variable("X"): Constant("z")}
        assert match_atom(atom("f", "X"), ("a",), prior) is None

    def test_does_not_mutate_caller_bindings(self):
        prior = {Variable("X"): Constant("a")}
        match_atom(atom("f", "X", "Y"), ("a", "b"), prior)
        assert prior == {Variable("X"): Constant("a")}

    def test_arity_mismatch(self):
        assert match_atom(atom("f", "X"), ("a", "b")) is None


class TestUnifyAtoms:
    def test_variable_to_constant(self):
        s = unify_atoms(atom("p", "X", "Y"), atom("p", "tom", "Z"))
        assert s is not None
        assert atom("p", "X", "Y").substitute(s) == atom(
            "p", "tom", "Z"
        ).substitute(s)

    def test_different_predicates(self):
        assert unify_atoms(atom("p", "X"), atom("q", "X")) is None

    def test_different_arities(self):
        assert unify_atoms(atom("p", "X"), atom("p", "X", "Y")) is None

    def test_clashing_constants(self):
        assert unify_atoms(atom("p", "tom"), atom("p", "sue")) is None

    def test_variable_chains_flattened(self):
        s = unify_atoms(atom("p", "X", "X"), atom("p", "Y", "tom"))
        assert s is not None
        result = atom("p", "X", "X").substitute(s)
        assert result == atom("p", "Y", "tom").substitute(s)
        assert result.is_ground()

    def test_rule_head_against_instance(self):
        # The Procedure Expand use case: a renamed rule head against a
        # fringe instance with distinguished variables and constants.
        head = atom("t", "X_1", "Y_1")
        instance = atom("t", "W_0", "Y")
        s = unify_atoms(head, instance)
        assert head.substitute(s) == instance.substitute(s)


class TestCompose:
    def test_sequential_application(self):
        first = {Variable("X"): Variable("Y")}
        second = {Variable("Y"): Constant("c")}
        composed = compose(first, second)
        assert composed[Variable("X")] == Constant("c")
        assert composed[Variable("Y")] == Constant("c")

    def test_apply_to_term_follows_chains(self):
        subst = {Variable("X"): Variable("Y"), Variable("Y"): Constant("c")}
        assert apply_to_term(Variable("X"), subst) == Constant("c")
        assert apply_to_term(Constant("k"), subst) == Constant("k")
