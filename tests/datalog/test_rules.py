"""Unit tests for rules: linearity, safety, recursion structure."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.errors import SafetyError
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Rule, rule


class TestBasics:
    def test_fact(self):
        r = parse_rule("friend(tom, sue).")
        assert r.is_fact
        assert r.body == ()

    def test_non_ground_bodiless_rule_is_not_a_fact(self):
        r = Rule(atom("p", "X"))
        assert not r.is_fact

    def test_variables(self):
        r = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        assert {v.name for v in r.variables()} == {"X", "Y", "W"}

    def test_body_predicates(self):
        r = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        assert r.body_predicates() == {"a", "t"}

    def test_str_round_trip(self):
        text = "t(X, Y) :- a(X, W) & t(W, Y)."
        assert str(parse_rule(text)) == text


class TestRecursionStructure:
    def test_is_recursive_in(self):
        r = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        assert r.is_recursive_in("t")
        assert not r.is_recursive_in("a")

    def test_exit_rule_not_recursive(self):
        assert not parse_rule("t(X, Y) :- t0(X, Y).").is_recursive_in("t")

    def test_linear(self):
        linear = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        nonlinear = parse_rule("t(X, Y) :- t(X, W) & t(W, Y).")
        assert linear.is_linear_in("t")
        assert not nonlinear.is_linear_in("t")

    def test_recursive_atom(self):
        r = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        assert r.recursive_atom("t") == atom("t", "W", "Y")

    def test_recursive_atom_none_for_exit_rule(self):
        assert parse_rule("t(X, Y) :- t0(X, Y).").recursive_atom("t") is None

    def test_recursive_atom_ambiguous_raises(self):
        r = parse_rule("t(X, Y) :- t(X, W) & t(W, Y).")
        with pytest.raises(ValueError):
            r.recursive_atom("t")

    def test_nonrecursive_body(self):
        r = parse_rule("t(X, Y) :- a(X, W) & t(W, Y) & b(Y, Z).")
        assert r.nonrecursive_body("t") == (
            atom("a", "X", "W"),
            atom("b", "Y", "Z"),
        )


class TestSafety:
    def test_safe_rule(self):
        parse_rule("t(X, Y) :- a(X, W) & t(W, Y).").check_safety()

    def test_unsafe_rule(self):
        r = parse_rule("t(X, Y) :- a(X, W).")
        with pytest.raises(SafetyError, match="Y"):
            r.check_safety()
        assert not r.is_safe()

    def test_unsafe_fact_with_variables(self):
        assert not Rule(atom("p", "X")).is_safe()

    def test_ground_fact_is_safe(self):
        parse_rule("p(a, b).").check_safety()


class TestTransformations:
    def test_substitute(self):
        r = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        from repro.datalog.terms import Constant, Variable

        result = r.substitute({Variable("X"): Constant("tom")})
        assert result == parse_rule("t(tom, Y) :- a(tom, W) & t(W, Y).")

    def test_rename(self):
        r = parse_rule("t(X, Y) :- a(X, W).")
        assert r.rename(2) == parse_rule("t(X_2, Y_2) :- a(X_2, W_2).")

    def test_rule_constructor_accepts_iterables(self):
        r = rule(atom("p", "X"), (a for a in [atom("q", "X")]))
        assert r.body == (atom("q", "X"),)
