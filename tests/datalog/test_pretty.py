"""Unit tests for pretty-printing round trips."""

from repro.datalog.atoms import atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.pretty import (
    answers_to_text,
    database_to_text,
    fact_to_text,
    program_to_text,
)


class TestFactToText:
    def test_simple(self):
        assert fact_to_text("friend", ("tom", "sue")) == "friend(tom, sue)."

    def test_needs_quoting(self):
        assert fact_to_text("p", ("Big X",)) == "p('Big X')."

    def test_integers(self):
        assert fact_to_text("age", ("tom", 42)) == "age(tom, 42)."


class TestProgramRoundTrip:
    TEXT = """
    buys(X, Y) :- friend(X, W) & buys(W, Y).
    buys(X, Y) :- perfectFor(X, Y).
    """

    def test_program_round_trip(self):
        program = parse_program(self.TEXT).program
        assert parse_program(program_to_text(program)).program == program

    def test_rule_iterable_accepted(self):
        program = parse_program(self.TEXT).program
        assert program_to_text(list(program.rules)) == program_to_text(
            program
        )


class TestDatabaseRoundTrip:
    def test_database_round_trip(self):
        db = Database.from_facts(
            {
                "friend": [("tom", "sue"), ("sue", "ann")],
                "age": [("tom", 41)],
                "odd name": [],  # empty relations vanish in text; fine
            }
        )
        reparsed = parse_program(database_to_text(db)).database
        assert reparsed.tuples("friend") == db.tuples("friend")
        assert reparsed.tuples("age") == db.tuples("age")

    def test_stable_ordering(self):
        db = Database.from_facts({"p": [("b",), ("a",)]})
        assert database_to_text(db) == database_to_text(db.copy())


class TestAnswersToText:
    def test_with_answers(self):
        text = answers_to_text(
            atom("buys", "tom", "Y"), [("tom", "camera")]
        )
        assert "buys(tom, camera)." in text
        assert text.startswith("% answers to buys(tom, Y)?")

    def test_no_answers(self):
        text = answers_to_text(atom("buys", "tom", "Y"), [])
        assert "(no answers)" in text
