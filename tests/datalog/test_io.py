"""Tests for on-disk persistence (Datalog text and CSV directories)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.errors import ArityError
from repro.datalog.io import (
    load_csv_directory,
    load_program,
    save_csv_directory,
    save_database,
    save_program,
)
from repro.datalog.parser import parse_program
from repro.workloads.paper import example_1_1_program


@pytest.fixture
def db():
    result = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann")],
            "age": [("tom", 41), ("sue", -3)],
        }
    )
    result.ensure("empty", 1)
    return result


class TestDatalogText:
    def test_program_round_trip(self, tmp_path):
        program = example_1_1_program()
        target = tmp_path / "prog.dl"
        save_program(program, target)
        assert load_program(target).program == program

    def test_program_with_facts(self, tmp_path, db):
        program = example_1_1_program()
        target = tmp_path / "prog.dl"
        save_program(program, target, database=db)
        loaded = load_program(target)
        assert loaded.program == program
        assert loaded.database.tuples("friend") == db.tuples("friend")
        assert loaded.database.tuples("age") == db.tuples("age")

    def test_save_database(self, tmp_path, db):
        target = tmp_path / "facts.dl"
        save_database(db, target)
        loaded = load_program(target)
        assert loaded.database.tuples("age") == db.tuples("age")

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_program(tmp_path / "missing.dl")


class TestCsvDirectories:
    def test_round_trip(self, tmp_path, db):
        save_csv_directory(db, tmp_path / "data")
        loaded = load_csv_directory(tmp_path / "data")
        assert loaded.tuples("friend") == db.tuples("friend")
        assert loaded.tuples("age") == db.tuples("age")

    def test_integer_values_preserved(self, tmp_path, db):
        save_csv_directory(db, tmp_path / "data")
        loaded = load_csv_directory(tmp_path / "data")
        assert ("tom", 41) in loaded.tuples("age")
        assert ("sue", -3) in loaded.tuples("age")
        assert ("tom", "41") not in loaded.tuples("age")

    def test_empty_relation_file_written(self, tmp_path, db):
        save_csv_directory(db, tmp_path / "data")
        assert (tmp_path / "data" / "empty.csv").exists()

    def test_merge_into_existing(self, tmp_path, db):
        save_csv_directory(db, tmp_path / "data")
        existing = Database.from_facts({"extra": [("x",)]})
        merged = load_csv_directory(tmp_path / "data", db=existing)
        assert merged is existing
        assert merged.size("friend") == 2
        assert merged.size("extra") == 1

    def test_ragged_rows_rejected(self, tmp_path):
        data = tmp_path / "data"
        data.mkdir()
        (data / "p.csv").write_text("a,b\nc\n")
        with pytest.raises(ArityError, match="p.csv:2"):
            load_csv_directory(data)

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csv_directory(tmp_path / "nope")

    def test_loaded_data_queriable(self, tmp_path):
        """End to end: CSV EDB -> engine query."""
        from repro.engine import Engine

        data = tmp_path / "data"
        data.mkdir()
        (data / "friend.csv").write_text("tom,sue\nsue,ann\n")
        (data / "idol.csv").write_text("")
        (data / "perfectFor.csv").write_text("ann,camera\n")
        db = load_csv_directory(data)
        db.ensure("idol", 2)
        engine = Engine(example_1_1_program(), db)
        assert engine.query("buys(tom, Y)?").answers == {
            ("tom", "camera")
        }

    def test_stable_output(self, tmp_path, db):
        save_csv_directory(db, tmp_path / "a")
        save_csv_directory(db, tmp_path / "b")
        for name in ("friend.csv", "age.csv"):
            assert (tmp_path / "a" / name).read_text() == (
                tmp_path / "b" / name
            ).read_text()
