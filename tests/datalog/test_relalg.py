"""Unit tests for the relational algebra expressions and interpreter."""

import pytest

from repro.datalog.database import Database
from repro.datalog.errors import EvaluationError
from repro.datalog.relalg import (
    Difference,
    Extend,
    NaturalJoin,
    Placeholder,
    Project,
    Rename,
    Scan,
    Select,
    SelectEq,
    Union,
    Values,
    evaluate,
    to_text,
)


@pytest.fixture
def db():
    return Database.from_facts(
        {
            "e": [("a", "b"), ("b", "c"), ("c", "c")],
            "lbl": [("b", "blue"), ("c", "red")],
        }
    )


class TestLeafNodes:
    def test_scan(self, db):
        assert evaluate(Scan("e", ("X", "Y")), db) == {
            ("a", "b"), ("b", "c"), ("c", "c"),
        }

    def test_scan_repeated_label_filters(self, db):
        assert evaluate(Scan("e", ("X", "X")), db) == {("c",)}

    def test_scan_missing_relation_empty(self, db):
        assert evaluate(Scan("missing", ("X",)), db) == frozenset()

    def test_values(self, db):
        v = Values(("A",), frozenset({("q",)}))
        assert evaluate(v, db) == {("q",)}

    def test_placeholder_bound(self, db):
        p = Placeholder("carry", ("X",))
        assert evaluate(p, db, {"carry": frozenset({("a",)})}) == {("a",)}

    def test_placeholder_unbound_raises(self, db):
        with pytest.raises(EvaluationError, match="unbound placeholder"):
            evaluate(Placeholder("carry", ("X",)), db)


class TestOperators:
    def test_select(self, db):
        expr = Select(Scan("e", ("X", "Y")), "X", "b")
        assert evaluate(expr, db) == {("b", "c")}

    def test_select_eq(self, db):
        expr = SelectEq(Scan("e", ("X", "Y")), "X", "Y")
        assert evaluate(expr, db) == {("c", "c")}

    def test_project(self, db):
        expr = Project(Scan("e", ("X", "Y")), ("Y",))
        assert evaluate(expr, db) == {("b",), ("c",)}

    def test_natural_join(self, db):
        expr = NaturalJoin(Scan("e", ("X", "Y")), Scan("lbl", ("Y", "C")))
        assert expr.schema == ("X", "Y", "C")
        assert evaluate(expr, db) == {
            ("a", "b", "blue"),
            ("b", "c", "red"),
            ("c", "c", "red"),
        }

    def test_join_without_shared_attributes_is_product(self, db):
        expr = NaturalJoin(Scan("e", ("X", "Y")), Scan("lbl", ("P", "Q")))
        assert len(evaluate(expr, db)) == 6

    def test_rename(self, db):
        expr = Rename(Scan("e", ("X", "Y")), (("X", "From"), ("Y", "To")))
        assert expr.schema == ("From", "To")
        assert evaluate(expr, db) == evaluate(Scan("e", ("A", "B")), db)

    def test_extend_copy(self, db):
        expr = Extend(Scan("e", ("X", "Y")), "Z", from_attribute="X")
        assert ("a", "b", "a") in evaluate(expr, db)

    def test_extend_constant(self, db):
        expr = Extend(Scan("e", ("X", "Y")), "Z", value=7)
        assert all(r[2] == 7 for r in evaluate(expr, db))

    def test_union(self, db):
        expr = Union(
            (
                Project(Scan("e", ("X", "Y")), ("X",)),
                Project(Rename(Scan("lbl", ("A", "B")), (("A", "X"),)),
                        ("X",)),
            )
        )
        assert evaluate(expr, db) == {("a",), ("b",), ("c",)}

    def test_difference(self, db):
        all_sources = Project(Scan("e", ("X", "Y")), ("X",))
        labelled = Project(
            Rename(Scan("lbl", ("A", "B")), (("A", "X"),)), ("X",)
        )
        assert evaluate(Difference(all_sources, labelled), db) == {("a",)}


class TestValidation:
    def test_select_unknown_attribute(self):
        with pytest.raises(ValueError):
            Select(Scan("e", ("X", "Y")), "Z", "v")

    def test_project_unknown_attribute(self):
        with pytest.raises(ValueError):
            Project(Scan("e", ("X", "Y")), ("Z",))

    def test_union_schema_mismatch(self):
        with pytest.raises(ValueError):
            Union((Scan("e", ("X", "Y")), Scan("lbl", ("A", "B"))))

    def test_union_empty(self):
        with pytest.raises(ValueError):
            Union(())

    def test_difference_schema_mismatch(self):
        with pytest.raises(ValueError):
            Difference(Scan("e", ("X", "Y")), Scan("lbl", ("A", "B")))

    def test_rename_collision(self):
        with pytest.raises(ValueError):
            Rename(Scan("e", ("X", "Y")), (("X", "Y"),))

    def test_extend_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            Extend(Scan("e", ("X", "Y")), "Z")
        with pytest.raises(ValueError):
            Extend(Scan("e", ("X", "Y")), "Z", from_attribute="X", value=1)

    def test_extend_existing_attribute(self):
        with pytest.raises(ValueError):
            Extend(Scan("e", ("X", "Y")), "X", value=1)

    def test_values_duplicate_schema(self):
        with pytest.raises(ValueError):
            Values(("A", "A"), frozenset())


class TestToText:
    def test_composition_renders(self, db):
        expr = Project(
            Select(
                NaturalJoin(Scan("e", ("X", "Y")), Scan("lbl", ("Y", "C"))),
                "C",
                "red",
            ),
            ("X",),
        )
        text = to_text(expr)
        assert "π[X]" in text and "σ[C=red]" in text and "⋈" in text

    def test_every_node_kind_renders(self, db):
        pieces = [
            Scan("e", ("X", "Y")),
            Values(("A",), frozenset()),
            Placeholder("c", ("X",)),
            Select(Scan("e", ("X", "Y")), "X", "a"),
            SelectEq(Scan("e", ("X", "Y")), "X", "Y"),
            Project(Scan("e", ("X", "Y")), ("X",)),
            NaturalJoin(Scan("e", ("X", "Y")), Scan("lbl", ("Y", "C"))),
            Extend(Scan("e", ("X", "Y")), "Z", value=1),
            Rename(Scan("e", ("X", "Y")), (("X", "A"),)),
            Union((Scan("e", ("X", "Y")),)),
            Difference(Scan("e", ("X", "Y")), Scan("e", ("X", "Y"))),
        ]
        for expr in pieces:
            assert to_text(expr)
