"""Unit tests for body evaluation: joins, the eq builtin, stats counting."""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.joins import EQ, evaluate_body, instantiate_args
from repro.datalog.terms import Variable
from repro.stats import EvaluationStats


@pytest.fixture
def db():
    return Database.from_facts(
        {
            "edge": [("a", "b"), ("b", "c"), ("b", "d")],
            "color": [("a", "red"), ("c", "blue"), ("d", "blue")],
        }
    )


def solutions(db, atoms, **kwargs):
    return list(evaluate_body(db, atoms, **kwargs))


class TestSingleAtom:
    def test_all_matches(self, db):
        assert len(solutions(db, [atom("edge", "X", "Y")])) == 3

    def test_constant_restriction(self, db):
        results = solutions(db, [atom("edge", "b", "Y")])
        assert {b[Variable("Y")] for b in results} == {"c", "d"}

    def test_initial_bindings(self, db):
        results = solutions(
            db, [atom("edge", "X", "Y")],
            initial_bindings={Variable("X"): "a"},
        )
        assert len(results) == 1
        assert results[0][Variable("Y")] == "b"

    def test_repeated_variable_in_atom(self):
        db = Database.from_facts({"p": [("a", "a"), ("a", "b")]})
        results = solutions(db, [atom("p", "X", "X")])
        assert len(results) == 1

    def test_missing_relation_yields_nothing(self, db):
        assert solutions(db, [atom("nope", "X")]) == []


class TestConjunctions:
    def test_two_way_join(self, db):
        results = solutions(
            db, [atom("edge", "X", "Y"), atom("color", "Y", "blue")]
        )
        assert {(b[Variable("X")], b[Variable("Y")]) for b in results} == {
            ("b", "c"),
            ("b", "d"),
        }

    def test_chain_join(self, db):
        results = solutions(
            db, [atom("edge", "X", "Y"), atom("edge", "Y", "Z")]
        )
        assert {b[Variable("Z")] for b in results} == {"c", "d"}

    def test_empty_body_yields_initial_bindings(self, db):
        results = solutions(db, [], initial_bindings={Variable("X"): "q"})
        assert results == [{Variable("X"): "q"}]

    def test_left_to_right_equals_greedy_answers(self, db):
        body = [atom("edge", "X", "Y"), atom("color", "Y", "C")]
        greedy = {
            instantiate_args(atom("r", "X", "C").args, b)
            for b in solutions(db, body, order="greedy")
        }
        l2r = {
            instantiate_args(atom("r", "X", "C").args, b)
            for b in solutions(db, body, order="left_to_right")
        }
        assert greedy == l2r

    def test_unknown_order_rejected(self, db):
        with pytest.raises(ValueError):
            solutions(db, [atom("edge", "X", "Y")], order="random")


class TestEqBuiltin:
    def test_filter_when_both_bound(self, db):
        body = [atom("edge", "X", "Y"), Atom(EQ, atom("x", "X", "Y").args)]
        assert solutions(db, body) == []
        db.add_fact("edge", ("e", "e"))
        assert len(solutions(db, body)) == 1

    def test_assign_when_one_bound(self, db):
        body = [atom("edge", "a", "Y"), atom(EQ, "Z", "Y")]
        results = solutions(db, body)
        assert results[0][Variable("Z")] == "b"

    def test_assign_against_constant(self, db):
        results = solutions(db, [atom(EQ, "Z", "kim")])
        assert results[0][Variable("Z")] == "kim"

    def test_both_unbound_raises(self, db):
        with pytest.raises(ValueError, match="unbound"):
            solutions(db, [atom(EQ, "A", "B")])

    def test_eq_deferred_until_ready_in_greedy_order(self, db):
        # eq(Z, Y) listed first must still wait for edge to bind Y.
        body = [atom(EQ, "Z", "Y"), atom("edge", "a", "Y")]
        results = solutions(db, body)
        assert results[0][Variable("Z")] == "b"


class TestStats:
    def test_tuples_examined_counted(self, db):
        stats = EvaluationStats()
        solutions(db, [atom("edge", "b", "Y")], stats=stats)
        assert stats.tuples_examined == 2

    def test_index_restricts_examination(self, db):
        # With the constant bound, only matching tuples are fetched.
        stats = EvaluationStats()
        solutions(db, [atom("color", "X", "blue")], stats=stats)
        assert stats.tuples_examined == 2  # not 3


class TestInstantiateArgs:
    def test_mix_of_constants_and_variables(self):
        args = atom("p", "tom", "X").args
        assert instantiate_args(args, {Variable("X"): 5}) == ("tom", 5)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            instantiate_args(atom("p", "X").args, {})
