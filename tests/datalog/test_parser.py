"""Unit tests for the Prolog-flavoured parser."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.errors import DatalogSyntaxError
from repro.datalog.parser import (
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.datalog.terms import Constant, Variable


class TestAtoms:
    def test_simple(self):
        assert parse_atom("friend(tom, X)") == atom("friend", "tom", "X")

    def test_integers(self):
        assert parse_atom("age(tom, 42)") == atom("age", "tom", 42)

    def test_negative_integers(self):
        assert parse_atom("delta(X, -3)") == atom("delta", "X", -3)

    def test_quoted_strings(self):
        a = parse_atom("name(X, 'Tom Smith')")
        assert a.args[1] == Constant("Tom Smith")

    def test_quoted_string_escapes(self):
        a = parse_atom(r"name(X, 'o\'brien')")
        assert a.args[1] == Constant("o'brien")

    def test_underscore_variable(self):
        assert parse_atom("p(_x)").args[0] == Variable("_x")

    def test_unterminated_string(self):
        with pytest.raises(DatalogSyntaxError, match="unterminated"):
            parse_atom("p('oops)")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("Friend(tom, X)")

    def test_trailing_junk_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("p(X) q")


class TestRules:
    def test_ampersand_and_comma_conjunctions(self):
        with_amp = parse_rule("t(X, Y) :- a(X, W) & t(W, Y).")
        with_comma = parse_rule("t(X, Y) :- a(X, W), t(W, Y).")
        assert with_amp == with_comma

    def test_fact(self):
        r = parse_rule("friend(tom, sue).")
        assert r.is_fact

    def test_missing_period(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("t(X) :- a(X)")

    def test_query_rejected_as_rule(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("t(X)?")


class TestQueries:
    def test_question_mark_form(self):
        assert parse_query("buys(tom, Y)?") == atom("buys", "tom", "Y")

    def test_prolog_form(self):
        assert parse_query("?- buys(tom, Y).") == atom("buys", "tom", "Y")

    def test_bare_atom(self):
        assert parse_query("buys(tom, Y)") == atom("buys", "tom", "Y")


class TestPrograms:
    PROGRAM = """
    % Example 1.1 of the paper
    buys(X, Y) :- friend(X, W) & buys(W, Y).
    buys(X, Y) :- idol(X, W) & buys(W, Y).
    buys(X, Y) :- perfectFor(X, Y).

    friend(tom, sue).
    idol(tom, ann).
    perfectFor(ann, camera).

    buys(tom, Y)?
    """

    def test_rules_facts_queries_split(self):
        parsed = parse_program(self.PROGRAM)
        assert len(parsed.program) == 3
        assert parsed.database.size("friend") == 1
        assert parsed.database.size("idol") == 1
        assert parsed.database.size("perfectFor") == 1
        assert parsed.queries == (atom("buys", "tom", "Y"),)

    def test_comments_ignored(self):
        parsed = parse_program("% nothing here\np(a).  % trailing\n")
        assert parsed.database.size("p") == 1

    def test_empty_program(self):
        parsed = parse_program("")
        assert len(parsed.program) == 0
        assert parsed.queries == ()

    def test_error_carries_position(self):
        try:
            parse_program("p(a).\nq(b) :- .")
        except DatalogSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")

    def test_unexpected_character(self):
        with pytest.raises(DatalogSyntaxError, match="unexpected"):
            parse_program("p(a) @ q(b).")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "t(X, Y) :- a(X, W) & t(W, Y).",
            "t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).",
            "p(42, 'Big Name') :- q(42, X) & r(X, 'Big Name').",
        ],
    )
    def test_str_reparses_identically(self, text):
        r = parse_rule(text)
        assert parse_rule(str(r)) == r
