"""Unit tests for naive and semi-naive bottom-up evaluation."""

import pytest

from repro.budget import Budget
from repro.datalog.database import Database
from repro.datalog.errors import BudgetExceeded
from repro.datalog.naive import naive_evaluate
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_evaluate
from repro.stats import EvaluationStats

TC = """
tc(X, Y) :- edge(X, W) & tc(W, Y).
tc(X, Y) :- edge(X, Y).
"""


def tc_db(edges):
    return Database.from_facts({"edge": edges})


def expected_closure(edges):
    import networkx as nx

    g = nx.DiGraph(edges)
    closure = set()
    for a in g.nodes:
        for b in nx.descendants(g, a):
            closure.add((a, b))
    return closure


@pytest.mark.parametrize("evaluate", [naive_evaluate, seminaive_evaluate])
class TestBothEvaluators:
    def test_transitive_closure_chain(self, evaluate):
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        result = evaluate(parse_program(TC).program, tc_db(edges))
        assert result.tuples("tc") == expected_closure(edges)

    def test_transitive_closure_cycle_terminates(self, evaluate):
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        result = evaluate(parse_program(TC).program, tc_db(edges))
        assert result.tuples("tc") == {
            (x, y) for x in "abc" for y in "abc"
        }

    def test_diamond(self, evaluate):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        result = evaluate(parse_program(TC).program, tc_db(edges))
        assert result.tuples("tc") == expected_closure(edges)

    def test_empty_edb(self, evaluate):
        result = evaluate(parse_program(TC).program, Database())
        assert result.tuples("tc") == frozenset()

    def test_edb_not_modified(self, evaluate):
        db = tc_db([("a", "b")])
        evaluate(parse_program(TC).program, db)
        assert "tc" not in db

    def test_multiple_idb_predicates(self, evaluate):
        program = parse_program(
            """
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- parent(X, W) & anc(W, Y).
            related(X, Y) :- anc(Z, X) & anc(Z, Y).
            """
        ).program
        db = Database.from_facts(
            {"parent": [("a", "b"), ("a", "c"), ("b", "d")]}
        )
        result = evaluate(program, db)
        assert ("b", "c") in result.tuples("related")
        assert ("d", "d") in result.tuples("related")

    def test_budget_enforced(self, evaluate):
        edges = [(f"n{i}", f"n{i+1}") for i in range(30)]
        tight = Budget(max_relation_tuples=10)
        with pytest.raises(BudgetExceeded):
            evaluate(
                parse_program(TC).program, tc_db(edges),
                stats=EvaluationStats(), budget=tight,
            )


class TestSemiNaiveSpecifics:
    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(X) :- succ(Y, X) & odd(Y).
            odd(X) :- succ(Y, X) & even(Y).
            """
        ).program
        db = Database.from_facts(
            {
                "zero": [("0",)],
                "succ": [(str(i), str(i + 1)) for i in range(6)],
            }
        )
        result = seminaive_evaluate(program, db)
        assert result.tuples("even") == {("0",), ("2",), ("4",), ("6",)}
        assert result.tuples("odd") == {("1",), ("3",), ("5",)}

    def test_stratified_base_materialized_first(self):
        program = parse_program(
            """
            hop(X, Y) :- edge(X, W) & edge(W, Y).
            far(X, Y) :- hop(X, W) & far(W, Y).
            far(X, Y) :- hop(X, Y).
            """
        ).program
        db = Database.from_facts(
            {"edge": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]}
        )
        result = seminaive_evaluate(program, db)
        assert ("a", "c") in result.tuples("hop")
        assert ("a", "e") in result.tuples("far")

    def test_same_answers_as_naive_on_random_graph(self):
        from repro.workloads.generators import random_graph

        db = tc_db(random_graph(12, 25, seed=7))
        program = parse_program(TC).program
        assert seminaive_evaluate(program, db).tuples(
            "tc"
        ) == naive_evaluate(program, db).tuples("tc")

    def test_stats_recorded(self):
        stats = EvaluationStats()
        seminaive_evaluate(
            parse_program(TC).program,
            tc_db([("a", "b"), ("b", "c")]),
            stats=stats,
        )
        assert stats.relation_sizes["tc"] == 3
        assert stats.iterations >= 2
        assert stats.tuples_produced >= 3

    def test_fewer_rederivations_than_naive(self):
        edges = [(f"n{i}", f"n{i+1}") for i in range(15)]
        program = parse_program(TC).program
        naive_stats = EvaluationStats()
        naive_evaluate(program, tc_db(edges), stats=naive_stats)
        semi_stats = EvaluationStats()
        seminaive_evaluate(program, tc_db(edges), stats=semi_stats)
        assert semi_stats.tuples_produced < naive_stats.tuples_produced

    def test_idb_predicate_without_rules_after_restriction(self):
        program = parse_program("p(X) :- q(X).").program
        db = Database.from_facts({"q": [("a",)]})
        result = seminaive_evaluate(program, db)
        assert result.tuples("p") == {("a",)}
