"""Unit tests for the compiled join kernel and its plan cache.

The contract under test: :func:`evaluate_body` (which now runs through
:class:`repro.datalog.plan_cache.JoinPlan`) stays observably identical
to the interpreted join, while plans are compiled O(1) times per
(rule body, binding signature) -- never per tuple, per round, or per
database size.
"""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.joins import (
    EQ,
    evaluate_body,
    evaluate_body_interpreted,
    evaluate_body_project,
)
from repro.datalog.parser import parse_program
from repro.datalog.plan_cache import (
    PLAN_CACHE,
    PlanCache,
    compile_join_plan,
    greedy_permutation,
)
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Constant, Variable
from repro.engine import Engine
from repro.workloads.generators import chain

TC_TEXT = "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."


def binding_set(results):
    return frozenset(frozenset(b.items()) for b in results)


@pytest.fixture
def db():
    return Database.from_facts(
        {
            "edge": [("a", "b"), ("b", "c"), ("b", "d")],
            "color": [("a", "red"), ("c", "blue"), ("d", "blue")],
        }
    )


class TestCompileExecute:
    def test_plan_matches_interpreter(self, db):
        body = (atom("edge", "X", "Y"), atom("color", "Y", "C"))
        plan = compile_join_plan(body, db=db)
        assert binding_set(plan.execute(db, {})) == binding_set(
            evaluate_body_interpreted(db, body)
        )

    def test_repeated_variable_checked(self):
        db = Database.from_facts({"p": [("a", "a"), ("a", "b")]})
        plan = compile_join_plan((atom("p", "X", "X"),), db=db)
        assert len(list(plan.execute(db, {}))) == 1

    def test_initial_bindings_preloaded(self, db):
        body = (atom("edge", "X", "Y"),)
        x = Variable("X")
        plan = compile_join_plan(body, bound_vars=frozenset({x}), db=db)
        results = list(plan.execute(db, {x: "b"}))
        assert {b[Variable("Y")] for b in results} == {"c", "d"}
        assert all(b[x] == "b" for b in results)

    def test_eq_const_const_false_is_always_empty(self, db):
        plan = compile_join_plan(
            (Atom(EQ, (Constant("a"), Constant("b"))),
             atom("edge", "X", "Y")),
            db=db,
        )
        assert plan.always_empty
        assert list(plan.execute(db, {})) == []

    def test_eq_arity_checked(self, db):
        with pytest.raises(ValueError, match="arity 2"):
            compile_join_plan((Atom(EQ, (Variable("X"),)),), db=db)

    def test_atom_order_follows_sizes(self, db):
        # color (3 tuples) vs edge (3 tuples): with X pre-bound, the
        # bound-variable count dominates and edge(X, Y) goes first.
        body = (atom("color", "Y", "C"), atom("edge", "X", "Y"))
        perm = greedy_permutation(
            body, frozenset({Variable("X")}), db=db
        )
        assert perm[0] == 1


class TestExecuteProject:
    def test_matches_execute_plus_instantiate(self, db):
        body = (atom("edge", "X", "Y"), atom("color", "Y", "C"))
        output = (Variable("C"), Constant("tag"), Variable("X"))
        facts = set(evaluate_body_project(db, body, output))
        expected = {
            (b[Variable("C")], "tag", b[Variable("X")])
            for b in evaluate_body(db, body)
        }
        assert facts == expected

    def test_falls_back_for_prebound_only_variable(self, db):
        # Z never occurs in the body, so it has no register; the
        # projection falls back to the dict path and reads it from the
        # initial bindings.
        z = Variable("Z")
        facts = set(
            evaluate_body_project(
                db,
                (atom("edge", "b", "Y"),),
                (z, Variable("Y")),
                initial_bindings={z: "seed"},
            )
        )
        assert facts == {("seed", "c"), ("seed", "d")}

    def test_unbound_output_variable_raises(self, db):
        with pytest.raises(KeyError):
            list(
                evaluate_body_project(
                    db, (atom("edge", "X", "Y"),), (Variable("Nope"),)
                )
            )

    def test_empty_body_projects_initial_bindings(self, db):
        z = Variable("Z")
        facts = list(
            evaluate_body_project(
                db, (), (z,), initial_bindings={z: "v"}
            )
        )
        assert facts == [("v",)]


class TestLeftToRightEqDeferral:
    """Regression: rectification can place eq/2 before its binders.

    ``order="left_to_right"`` used to raise ``ValueError: both sides
    unbound`` on such bodies; the eq atom must instead wait until a
    later atom binds one side.  Both the compiled and the interpreted
    paths defer.
    """

    BODY = (
        Atom(EQ, (Variable("X"), Variable("Y"))),
        atom("edge", "X", "Y"),
    )

    def test_compiled_defers(self):
        db = Database.from_facts({"edge": [("a", "a"), ("a", "b")]})
        results = list(
            evaluate_body(db, self.BODY, order="left_to_right")
        )
        assert binding_set(results) == binding_set(
            [{Variable("X"): "a", Variable("Y"): "a"}]
        )

    def test_interpreted_defers(self):
        db = Database.from_facts({"edge": [("a", "a"), ("a", "b")]})
        results = list(
            evaluate_body_interpreted(
                db, self.BODY, order="left_to_right"
            )
        )
        assert len(results) == 1

    def test_assign_form_defers(self, db):
        # eq(Z, Y) first: Z is assigned from Y once edge binds it.
        body = (Atom(EQ, (Variable("Z"), Variable("Y"))),
                atom("edge", "a", "Y"))
        results = list(evaluate_body(db, body, order="left_to_right"))
        assert [b[Variable("Z")] for b in results] == ["b"]

    def test_never_bindable_eq_still_raises(self, db):
        for evaluator in (evaluate_body, evaluate_body_interpreted):
            with pytest.raises(ValueError, match="both sides unbound"):
                list(
                    evaluator(
                        db,
                        (Atom(EQ, (Variable("A"), Variable("B"))),
                         atom("edge", "X", "Y")),
                        order="left_to_right",
                    )
                )


class TestPlanCacheKeying:
    def test_hit_on_repeat(self, db):
        cache = PlanCache()
        body = (atom("edge", "X", "Y"),)
        cache.plan_for(body, frozenset(), "greedy", db)
        cache.plan_for(body, frozenset(), "greedy", db)
        assert cache.stats() == {
            "size": 1, "hits": 1, "misses": 1, "compiles": 1,
            "evictions": 0, "orders": {"greedy": 2},
        }

    def test_size_growth_with_same_rank_hits(self):
        # p stays smaller than q: the greedy walk's comparisons -- and
        # therefore the plan -- cannot change, so no recompile.
        cache = PlanCache()
        db = Database.from_facts(
            {"p": [("a", "b")], "q": [(f"x{i}", f"y{i}") for i in range(5)]}
        )
        body = (atom("p", "X", "Y"), atom("q", "Y", "Z"))
        cache.plan_for(body, frozenset(), "greedy", db)
        db.add_fact("p", ("c", "d"))
        db.add_fact("q", ("y", "z"))
        cache.plan_for(body, frozenset(), "greedy", db)
        assert cache.stats()["compiles"] == 1
        assert cache.stats()["hits"] == 1

    def test_rank_flip_compiles_new_plan(self):
        cache = PlanCache()
        db = Database.from_facts(
            {"p": [("a", "b")], "q": [("x", "y"), ("u", "v")]}
        )
        body = (atom("p", "X", "Y"), atom("q", "Y", "Z"))
        first = cache.plan_for(body, frozenset(), "greedy", db)
        for i in range(5):  # now p is the bigger relation
            db.add_fact("p", (f"g{i}", f"h{i}"))
        second = cache.plan_for(body, frozenset(), "greedy", db)
        assert cache.stats()["compiles"] == 2
        assert first.atom_order() != second.atom_order()

    def test_fifo_eviction(self, db):
        cache = PlanCache(maxsize=2)
        bodies = [
            (atom("edge", "X", "Y"),),
            (atom("color", "X", "C"),),
            (atom("edge", "X", "Y"), atom("color", "Y", "C")),
        ]
        for body in bodies:
            cache.plan_for(body, frozenset(), "greedy", db)
        assert len(cache) == 2
        cache.plan_for(bodies[0], frozenset(), "greedy", db)  # evicted
        assert cache.stats()["compiles"] == 4


class TestPlanCompilesAreSizeIndependent:
    """The ISSUE's acceptance property: compiles depend on the program,
    never on the database size or the fixpoint round count."""

    @staticmethod
    def _seminaive_compiles(n):
        PLAN_CACHE.clear()
        program = parse_program(TC_TEXT).program
        seminaive_evaluate(program, Database.from_facts({"e": chain(n)}))
        return PLAN_CACHE.stats()["compiles"]

    def test_seminaive_round_count_does_not_compile(self):
        # chain(48) runs ~6x the fixpoint rounds of chain(8) over the
        # same rule bodies: every extra round must hit the cache.
        compiles = {self._seminaive_compiles(n) for n in (8, 48)}
        assert len(compiles) == 1
        assert compiles.pop() > 0

    def test_separable_engine_compiles_flat_across_sizes(self):
        counts = set()
        for n in (8, 48):
            PLAN_CACHE.clear()
            parsed = parse_program(TC_TEXT)
            engine = Engine(
                parsed.program, Database.from_facts({"e": chain(n)})
            )
            result = engine.query("tc(a0, Y)?", strategy="separable")
            assert len(result.answers) == n - 1
            counts.add(PLAN_CACHE.stats()["compiles"])
        assert len(counts) == 1


class TestPlanCacheThreadSafety:
    """The cache is shared by the query service's worker threads: its
    counters must stay consistent and its eviction must never drop the
    entry just inserted, no matter the interleaving."""

    @staticmethod
    def _bodies(k):
        return [
            (atom("edge", "X", f"Y{i}"), atom("edge", f"Y{i}", "Z"))
            for i in range(k)
        ]

    def test_concurrent_lookups_keep_counters_consistent(self):
        import threading

        cache = PlanCache(maxsize=64)
        db = Database.from_facts({"edge": [("a", "b"), ("b", "c")]})
        bodies = self._bodies(6)
        lookups_per_thread = 50
        threads = []

        def worker(seed):
            for i in range(lookups_per_thread):
                body = bodies[(seed + i) % len(bodies)]
                plan = cache.plan_for(body, frozenset(), "greedy", db)
                assert plan.body == body

        for seed in range(8):
            threads.append(threading.Thread(target=worker, args=(seed,)))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        stats = cache.stats()
        # Every lookup was counted exactly once, as a hit or a miss.
        assert stats["hits"] + stats["misses"] == 8 * lookups_per_thread
        # Racing misses may compile duplicates (compilation runs outside
        # the lock by design), but never lose an insert.
        assert stats["compiles"] >= len(bodies)
        assert stats["size"] == len(bodies)

    def test_eviction_under_contention_never_drops_fresh_entry(self):
        import threading

        cache = PlanCache(maxsize=2)
        db = Database.from_facts({"edge": [("a", "b")]})
        bodies = self._bodies(8)
        failures = []

        def worker(seed):
            for i in range(60):
                body = bodies[(seed * 7 + i) % len(bodies)]
                plan = cache.plan_for(body, frozenset(), "greedy", db)
                if plan.body != body:
                    failures.append((seed, i))

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not failures
        assert cache.stats()["size"] <= 2
