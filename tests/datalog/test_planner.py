"""Unit tests for the cost-based join planner.

The contract under test: :func:`cost_permutation` picks orders from
System-R style cardinality estimates (sizes, per-column distincts,
sampled containment), deterministically; ``order="cost"`` and
``order="adaptive"`` compute exactly the sets the greedy order does;
and :class:`AdaptiveState` re-plans a bounded number of times only when
estimates and observations diverge.
"""

import pytest

from repro.datalog.atoms import Atom, atom
from repro.datalog.database import Database
from repro.datalog.joins import (
    EQ,
    evaluate_body,
    evaluate_body_interpreted,
)
from repro.datalog.plan_cache import ORDERS, PlanCache, compile_join_plan
from repro.datalog.planner import (
    DIVERGENCE_FACTOR,
    DP_MAX_ATOMS,
    MAX_REPLANS,
    AdaptiveState,
    cost_permutation,
    size_signature,
)
from repro.datalog.terms import Variable
from repro.observability import Tracer


def binding_set(results):
    return frozenset(frozenset(b.items()) for b in results)


@pytest.fixture
def skewed_db():
    """a(X,Y) selective, big(X,Z) fans out 8 per X, sel(Y,Z) selective."""
    n, f = 8, 8
    return Database.from_facts({
        "a": [(f"x{i}", f"y{i}") for i in range(n)],
        "big": [(f"x{i}", f"z{j}") for i in range(n) for j in range(f)],
        "sel": [(f"y{i}", f"z{i}") for i in range(n)],
    })


class TestCostPermutation:
    def test_defers_fanout_atom(self, skewed_db):
        # Greedy-by-size runs a (8) then big (64): quadratic fanout.
        # The cost model sees that a ⋈ sel keeps ~n rows and big joins
        # last on two bound columns.
        body = (atom("a", "X", "Y"), atom("big", "X", "Z"),
                atom("sel", "Y", "Z"))
        perm, est = cost_permutation(body, frozenset(), skewed_db)
        assert perm.index(1) == 2  # big goes last
        assert est > 0

    def test_deterministic_across_calls(self, skewed_db):
        body = (atom("a", "X", "Y"), atom("big", "X", "Z"),
                atom("sel", "Y", "Z"))
        results = {
            cost_permutation(body, frozenset(), skewed_db)
            for _ in range(5)
        }
        assert len(results) == 1

    def test_symmetric_atoms_break_ties_lexicographically(self):
        db = Database.from_facts({
            "p": [("a", "b"), ("c", "d")],
            "q": [("a", "b"), ("c", "d")],
        })
        body = (atom("p", "X", "Y"), atom("q", "X", "Y"))
        perm, _ = cost_permutation(body, frozenset(), db)
        assert perm == (0, 1)  # exact tie -> smaller permutation tuple

    def test_bound_vars_change_the_order(self):
        db = Database.from_facts({
            "sel": [(f"y{i}", f"z{i}") for i in range(50)],
            "big": [(f"x{i}", f"z{j}")
                    for i in range(10) for j in range(10)],
        })
        body = (atom("sel", "Y", "Z"), atom("big", "X", "Z"))
        free_perm, _ = cost_permutation(body, frozenset(), db)
        bound_perm, _ = cost_permutation(
            body, frozenset({Variable("X")}), db
        )
        # Unbound, sel (50 rows) beats big (100); with X bound, big
        # keeps ~100/10 = 10 rows and leads instead.
        assert free_perm == (0, 1)
        assert bound_perm == (1, 0)

    def test_eq_atoms_excluded_from_permutation(self, skewed_db):
        body = (Atom(EQ, (Variable("X"), Variable("W"))),
                atom("a", "X", "Y"), atom("sel", "Y", "Z"))
        perm, _ = cost_permutation(body, frozenset(), skewed_db)
        assert set(perm) == {1, 2}

    def test_empty_body(self):
        assert cost_permutation((), frozenset(), None) == ((), 0.0)

    def test_cross_products_deferred(self):
        db = Database.from_facts({
            "tiny": [("a",)],
            "p": [(f"u{i}", f"v{i}") for i in range(10)],
            "q": [(f"v{i}", f"w{i}") for i in range(10)],
        })
        # tiny shares no variable with p ⋈ q: the connected pair must
        # run as a unit even though tiny is the smallest relation.
        body = (atom("p", "X", "Y"), atom("tiny", "T"),
                atom("q", "Y", "Z"))
        perm, _ = cost_permutation(body, frozenset(), db)
        assert perm.index(1) != 1  # tiny never splits the join pair

    def test_greedy_sweep_past_dp_cutoff(self):
        # DP_MAX_ATOMS + 2 chained atoms: exercises the sweep fallback
        # and still yields a valid full permutation.
        k = DP_MAX_ATOMS + 2
        facts = {
            f"r{i}": [(f"c{i}_{j}", f"c{i + 1}_{j}") for j in range(3)]
            for i in range(k)
        }
        db = Database.from_facts(facts)
        body = tuple(
            atom(f"r{i}", f"V{i}", f"V{i + 1}") for i in range(k)
        )
        perm, est = cost_permutation(body, frozenset(), db)
        assert sorted(perm) == list(range(k))
        assert est > 0


class TestSizeSignature:
    def test_log_buckets(self):
        db = Database.from_facts({
            "p": [(f"t{i}",) for i in range(5)],
            "q": [(f"t{i}",) for i in range(100)],
        })
        body = (atom("p", "X"), Atom(EQ, (Variable("X"), Variable("Y"))),
                atom("q", "Y"))
        assert size_signature(body, db) == (3, -1, 7)

    def test_insensitive_within_bucket(self):
        db = Database.from_facts({"p": [(f"t{i}",) for i in range(9)]})
        body = (atom("p", "X"),)
        before = size_signature(body, db)
        for i in range(9, 15):  # 9..15 share bit_length 4
            db.add_fact("p", (f"t{i}",))
        assert size_signature(body, db) == before
        db.add_fact("p", ("t16",))
        assert size_signature(body, db) != before

    def test_missing_relation_is_zero(self):
        db = Database()
        assert size_signature((atom("ghost", "X"),), db) == (0,)


class TestCostOrderEquivalence:
    def test_all_orders_same_bindings(self, skewed_db):
        body = (atom("a", "X", "Y"), atom("big", "X", "Z"),
                atom("sel", "Y", "Z"))
        reference = binding_set(
            evaluate_body_interpreted(skewed_db, body)
        )
        for order in ORDERS:
            assert binding_set(
                evaluate_body(skewed_db, body, order=order)
            ) == reference, order

    def test_eq_before_binders_deferred(self):
        # The PR 4 regression shape: rectification can emit eq/2 ahead
        # of every atom that could bind its sides.
        db = Database.from_facts({"edge": [("a", "a"), ("a", "b")]})
        body = (Atom(EQ, (Variable("X"), Variable("Y"))),
                atom("edge", "X", "Y"))
        for order in ("cost", "adaptive"):
            results = list(evaluate_body(db, body, order=order))
            assert binding_set(results) == binding_set(
                [{Variable("X"): "a", Variable("Y"): "a"}]
            ), order

    def test_never_bindable_eq_still_raises(self, skewed_db):
        body = (Atom(EQ, (Variable("A"), Variable("B"))),
                atom("a", "X", "Y"))
        with pytest.raises(ValueError, match="both sides unbound"):
            list(evaluate_body(skewed_db, body, order="cost"))

    def test_unknown_order_rejected(self, skewed_db):
        with pytest.raises(ValueError, match="unknown join order"):
            list(evaluate_body(skewed_db, (atom("a", "X", "Y"),),
                               order="bogus"))


class TestCostPlanCaching:
    BODY = (atom("a", "X", "Y"), atom("big", "X", "Z"),
            atom("sel", "Y", "Z"))

    def test_same_bucket_no_recompile(self, skewed_db):
        cache = PlanCache()
        cache.plan_for(self.BODY, frozenset(), "cost", skewed_db)
        skewed_db.add_fact("a", ("x0b", "y0b"))  # 8 -> 9: same bucket
        cache.plan_for(self.BODY, frozenset(), "cost", skewed_db)
        assert cache.stats()["compiles"] == 1
        assert cache.stats()["hits"] == 1

    def test_bucket_shift_same_perm_hits_compile_cache(self, skewed_db):
        # Crossing a power of two re-plans (new memo key) but the
        # chosen permutation is unchanged, so the compiled plan is
        # reused -- the O(1)-compiles-per-body guarantee.
        cache = PlanCache()
        cache.plan_for(self.BODY, frozenset(), "cost", skewed_db)
        for i in range(70):
            skewed_db.add_fact("big", (f"x{i % 8}", f"zz{i}"))  # 64 -> 134
        cache.plan_for(self.BODY, frozenset(), "cost", skewed_db)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["compiles"] == 1  # same permutation

    def test_cost_and_adaptive_share_plans(self, skewed_db):
        cache = PlanCache()
        first = cache.plan_for(self.BODY, frozenset(), "cost", skewed_db)
        second = cache.plan_for(
            self.BODY, frozenset(), "adaptive", skewed_db,
            adaptive=AdaptiveState(),
        )
        assert first is second
        assert cache.stats()["compiles"] == 1
        assert cache.stats()["orders"] == {"cost": 1, "adaptive": 1}

    def test_estimate_reported_to_tracer_and_state(self, skewed_db):
        cache = PlanCache()
        tracer = Tracer()
        state = AdaptiveState()
        cache.plan_for(self.BODY, frozenset(), "adaptive", skewed_db,
                       tracer=tracer, adaptive=state)
        assert tracer.counter_total("plan_est_rows") >= 1
        assert state._expected > 0

    def test_compile_join_plan_cost_order(self, skewed_db):
        plan = compile_join_plan(self.BODY, db=skewed_db, order="cost")
        assert plan.atom_order()[-1] == "big"


class TestAdaptiveState:
    def test_accurate_estimate_no_replan(self):
        state = AdaptiveState()
        state.expect(100.0)
        assert state.observe_round(100) is False
        assert state.misestimates == 0
        assert state.replans == 0

    def test_divergence_triggers_replan_and_epoch(self):
        state = AdaptiveState()
        tracer = Tracer()
        state.expect(10.0)
        assert state.observe_round(1000, tracer) is True
        assert state.misestimates == 1
        assert state.replans == 1
        assert state.epoch == 1
        assert tracer.counter_total("plan_replans") == 1
        assert tracer.counter_total("plan_misestimates") == 1
        assert [s.name for s in tracer.spans()
                if s.name == "planner.replan"]

    def test_both_directions_diverge(self):
        over, under = AdaptiveState(), AdaptiveState()
        over.expect(1000.0)
        assert over.observe_round(10) is True
        under.expect(10.0)
        assert under.observe_round(1000) is True

    def test_boundary_is_not_a_misestimate(self):
        state = AdaptiveState()
        state.expect(24.0)  # lo = 25, hi = 100 = 4.0 * lo exactly
        assert state.observe_round(99) is False
        assert state.misestimates == 0

    def test_replan_budget_bounds_epoch(self):
        state = AdaptiveState()
        for _ in range(10):
            state.expect(1.0)
            state.observe_round(10_000)
        assert state.replans == MAX_REPLANS
        assert state.epoch == MAX_REPLANS
        assert state.misestimates == 10

    def test_empty_rounds_compare_cleanly(self):
        state = AdaptiveState()
        state.expect(0.0)
        assert state.observe_round(0) is False
        state.expect(0.0)
        # +1 smoothing: 0 expected vs DIVERGENCE_FACTOR rows is the
        # first produced count past the threshold.
        assert state.observe_round(int(DIVERGENCE_FACTOR)) is True
