"""Unit tests for relations and databases (storage + lazy indexes)."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.database import Database, Relation
from repro.datalog.errors import ArityError


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("p", 2)
        assert r.add(("a", "b"))
        assert ("a", "b") in r
        assert len(r) == 1

    def test_add_duplicate_returns_false(self):
        r = Relation("p", 2, [("a", "b")])
        assert not r.add(("a", "b"))
        assert len(r) == 1

    def test_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ArityError):
            r.add(("a",))

    def test_add_all_counts_new(self):
        r = Relation("p", 1)
        assert r.add_all([("a",), ("b",), ("a",)]) == 2

    def test_add_all_patches_live_indexes_once(self):
        r = Relation("p", 2, [("a", "b")])
        r.lookup((0,), ("a",))  # force index build
        assert r.add_all([("a", "z"), ("b", "c"), ("a", "b")]) == 2
        assert sorted(r.lookup((0,), ("a",))) == [("a", "b"), ("a", "z")]
        assert r.lookup((0,), ("b",)) == [("b", "c")]

    def test_add_all_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ArityError):
            r.add_all([("a", "b"), ("c",)])

    def test_add_all_bumps_version_by_new_count(self):
        r = Relation("p", 1, [("a",)])
        v = r.version
        assert r.add_all([("a",), ("b",), ("c",)]) == 2
        assert r.version == v + 2

    def test_add_all_empty_batch_keeps_version(self):
        r = Relation("p", 1, [("a",)])
        v = r.version
        assert r.add_all([("a",)]) == 0
        assert r.version == v

    def test_lookup_builds_index(self):
        r = Relation("p", 2, [("a", "b"), ("a", "c"), ("x", "y")])
        assert sorted(r.lookup((0,), ("a",))) == [("a", "b"), ("a", "c")]
        assert r.lookup((0,), ("zzz",)) == []

    def test_lookup_multi_column(self):
        r = Relation("p", 3, [("a", "b", "c"), ("a", "b", "d"), ("a", "x", "c")])
        assert sorted(r.lookup((0, 1), ("a", "b"))) == [
            ("a", "b", "c"),
            ("a", "b", "d"),
        ]

    def test_lookup_empty_positions_returns_all(self):
        r = Relation("p", 1, [("a",), ("b",)])
        assert sorted(r.lookup((), ())) == [("a",), ("b",)]

    def test_index_updated_after_add(self):
        r = Relation("p", 2, [("a", "b")])
        r.lookup((0,), ("a",))  # force index build
        r.add(("a", "z"))
        assert sorted(r.lookup((0,), ("a",))) == [("a", "b"), ("a", "z")]

    def test_zero_arity_relation(self):
        r = Relation("p", 0)
        assert r.add(())
        assert () in r
        assert r.lookup((), ()) == [()]

    def test_distinct_values(self):
        r = Relation("p", 2, [("a", "b"), ("b", "c")])
        assert r.distinct_values() == {"a", "b", "c"}

    def test_distinct_values_cached_until_mutation(self):
        r = Relation("p", 2, [("a", "b")])
        first = r.distinct_values()
        assert first is r.distinct_values()  # same frozenset, no rescan
        r.add(("c", "d"))
        assert r.distinct_values() == {"a", "b", "c", "d"}

    def test_distinct_values_cache_survives_clear(self):
        r = Relation("p", 1, [("a",)])
        r.distinct_values()
        r.clear()
        assert r.distinct_values() == frozenset()

    def test_distinct_values_cache_invalidated_by_discard(self):
        # Regression guard for the delete paths: PR 6's in-place index
        # patching must not leave a stale distinct cache behind.
        r = Relation("p", 2, [("a", "b"), ("b", "c")])
        assert r.distinct_values() == {"a", "b", "c"}
        r.discard(("b", "c"))
        assert r.distinct_values() == {"a", "b"}

    def test_distinct_values_cache_invalidated_by_discard_all(self):
        r = Relation("p", 2, [("a", "b"), ("b", "c"), ("c", "d")])
        assert r.distinct_values() == {"a", "b", "c", "d"}
        r.discard_all([("a", "b"), ("c", "d")])
        assert r.distinct_values() == {"b", "c"}

    def test_column_distinct_counts(self):
        r = Relation("p", 2, [("a", "x"), ("a", "y"), ("b", "x")])
        assert r.column_distinct_counts() == (2, 2)

    def test_column_distinct_counts_cached_until_mutation(self):
        r = Relation("p", 2, [("a", "x")])
        first = r.column_distinct_counts()
        assert first is r.column_distinct_counts()
        r.add(("b", "x"))
        assert r.column_distinct_counts() == (2, 1)
        r.discard(("b", "x"))
        assert r.column_distinct_counts() == (1, 1)

    def test_sample_deterministic_and_bounded(self):
        facts = [(f"t{i}", f"u{i}") for i in range(100)]
        r = Relation("p", 2, facts)
        first = r.sample(8)
        assert first is r.sample(8)  # cached per version
        assert len(first) == 8
        assert set(first) <= set(facts)
        # Content-hash ranked: a rebuilt relation samples identically.
        assert Relation("p", 2, facts).sample(8) == first

    def test_sample_small_relation_returns_everything(self):
        r = Relation("p", 1, [("b",), ("a",)])
        assert r.sample(32) == (("a",), ("b",))

    def test_sample_cache_invalidated_by_discard(self):
        facts = [(f"t{i}",) for i in range(50)]
        r = Relation("p", 1, facts)
        before = r.sample(4)
        r.discard_all(before)
        assert not set(r.sample(4)) & set(before)

    def test_clear(self):
        r = Relation("p", 1, [("a",)])
        r.lookup((0,), ("a",))
        r.clear()
        assert len(r) == 0
        assert r.lookup((0,), ("a",)) == []


class TestDatabase:
    def test_from_facts(self):
        db = Database.from_facts({"p": [("a", "b")], "q": [("c",)]})
        assert db.size("p") == 1
        assert db.arity("q") == 1

    def test_missing_relation_reads_empty(self):
        db = Database()
        assert db.tuples("nope") == frozenset()
        assert db.size("nope") == 0
        assert db.arity("nope") is None

    def test_ensure_conflicting_arity(self):
        db = Database.from_facts({"p": [("a", "b")]})
        with pytest.raises(ArityError):
            db.ensure("p", 3)

    def test_add_ground_atom(self):
        db = Database()
        db.add_ground_atom(atom("p", "a", 3))
        assert ("a", 3) in db.tuples("p")

    def test_add_non_ground_atom_rejected(self):
        db = Database()
        with pytest.raises(ValueError):
            db.add_ground_atom(atom("p", "X"))

    def test_copy_is_independent(self):
        db = Database.from_facts({"p": [("a",)]})
        other = db.copy()
        other.add_fact("p", ("b",))
        assert db.size("p") == 1
        assert other.size("p") == 2

    def test_copy_preserves_attach_aliasing(self):
        # Regression: copy() used to clone a relation once per *name*,
        # so a relation attached under two names became two unrelated
        # relations in the copy and writes through one alias vanished
        # from the other.
        db = Database()
        shared = Relation("p", 1, [("a",)])
        db.attach(shared)
        db.attach(shared, "alias")
        other = db.copy()
        assert other.relation("p") is other.relation("alias")
        other.add_fact("alias", ("b",))
        assert other.size("p") == 2
        # ... while the copy still shares nothing with the original.
        assert db.size("p") == 1
        assert shared.tuples() == frozenset({("a",)})

    def test_copy_keeps_distinct_relations_distinct(self):
        db = Database()
        db.attach(Relation("p", 1, [("a",)]))
        db.attach(Relation("q", 1, [("a",)]))
        other = db.copy()
        other.add_fact("p", ("b",))
        assert other.size("q") == 1

    def test_attach_shares_relation(self):
        db = Database()
        shared = Relation("p", 1, [("a",)])
        db.attach(shared)
        shared.add(("b",))
        assert db.size("p") == 2

    def test_attach_under_alias(self):
        db = Database()
        db.attach(Relation("p", 1, [("a",)]), "alias")
        assert db.size("alias") == 1

    def test_distinct_constants(self):
        db = Database.from_facts({"p": [("a", "b")], "q": [("b", "c")]})
        assert db.distinct_constants() == {"a", "b", "c"}

    def test_distinct_constants_cached_until_mutation(self):
        db = Database.from_facts({"p": [("a",)]})
        first = db.distinct_constants()
        assert first is db.distinct_constants()
        db.add_fact("p", ("b",))
        assert db.distinct_constants() == {"a", "b"}

    def test_distinct_constants_cache_sees_alias_mutation(self):
        # The fingerprint key covers mutations made through an attach()
        # alias in another database, same as the engine's caches.
        db = Database.from_facts({"p": [("a",)]})
        assert db.distinct_constants() == {"a"}
        view = Database()
        view.attach(db.relation("p"), "q")
        view.add_fact("q", ("b",))
        assert db.distinct_constants() == {"a", "b"}

    def test_total_tuples(self):
        db = Database.from_facts({"p": [("a",), ("b",)], "q": [("c", "d")]})
        assert db.total_tuples() == 3

    def test_predicates_and_contains(self):
        db = Database.from_facts({"p": [("a",)]})
        assert db.predicates() == {"p"}
        assert "p" in db
        assert "q" not in db


class TestVersioning:
    """Relation.version / Database.fingerprint drive the Engine's
    base-materialization cache invalidation."""

    def test_version_bumps_on_new_fact_only(self):
        rel = Relation("p", 2)
        v0 = rel.version
        assert rel.add(("a", "b"))
        assert rel.version > v0
        v1 = rel.version
        assert not rel.add(("a", "b"))  # duplicate
        assert rel.version == v1

    def test_version_bumps_on_clear(self):
        rel = Relation("p", 1, [("a",)])
        v = rel.version
        rel.clear()
        assert rel.version > v

    def test_fingerprint_is_order_insensitive(self):
        a = Database.from_facts({"p": [("a",)], "q": [("b",)]})
        b = Database()
        b.ensure("q", 1)
        b.ensure("p", 1)
        b.add_fact("q", ("b",))
        b.add_fact("p", ("a",))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_on_mutation(self):
        db = Database.from_facts({"p": [("a",)]})
        fp = db.fingerprint()
        db.add_fact("p", ("b",))
        assert db.fingerprint() != fp

    def test_fingerprint_sees_new_relation(self):
        db = Database.from_facts({"p": [("a",)]})
        fp = db.fingerprint()
        db.ensure("q", 2)
        assert db.fingerprint() != fp

    def test_fingerprint_sees_mutation_through_alias(self):
        # attach() shares the Relation object, so a fact added through
        # the alias bumps the one shared version counter -- and the
        # fingerprint must change under *both* names.
        db = Database.from_facts({"p": [("a", "b")]})
        rel = db.relation("p")
        db.attach(rel, "view")
        fp = db.fingerprint()
        db.add_fact("view", ("c", "d"))
        assert db.fingerprint() != fp
        assert ("c", "d") in db.tuples("p")

    def test_fingerprint_sees_alias_mutated_in_other_database(self):
        # The sharing crosses Database objects too: a view database
        # mutating an attached relation invalidates the owner's
        # fingerprint (this is what keeps Engine caches honest when
        # evaluators build _with_pseudo-style views).
        owner = Database.from_facts({"p": [("a",)]})
        view = Database()
        view.attach(owner.relation("p"), "q")
        fp = owner.fingerprint()
        view.add_fact("q", ("b",))
        assert owner.fingerprint() != fp


class TestAliasCacheInvalidation:
    """Engine base-IDB caches must notice mutations made through an
    attach() alias of an EDB relation."""

    def test_engine_recomputes_after_alias_mutation(self):
        from repro.datalog.parser import parse_program
        from repro.engine import Engine

        parsed = parse_program(
            "tc(X, Y) :- e(X, Y).\n"
            "tc(X, Y) :- e(X, W) & tc(W, Y).\n"
            "e(a, b)."
        )
        engine = Engine(parsed.program, parsed.database)
        first = engine.query("tc(a, Y)?", strategy="seminaive")
        assert first.answers == frozenset({("a", "b")})

        alias = Database()
        alias.attach(parsed.database.relation("e"), "edges")
        alias.add_fact("edges", ("b", "c"))

        second = engine.query("tc(a, Y)?", strategy="seminaive")
        assert second.answers == frozenset({("a", "b"), ("a", "c")})


class TestDiscard:
    def test_discard_removes_and_reports(self):
        rel = Relation("p", 2, [("a", "b"), ("c", "d")])
        assert rel.discard(("a", "b"))
        assert ("a", "b") not in rel
        assert len(rel) == 1

    def test_discard_absent_is_a_noop(self):
        rel = Relation("p", 2, [("a", "b")])
        v = rel.version
        assert not rel.discard(("x", "y"))
        assert rel.version == v

    def test_discard_enforces_arity(self):
        rel = Relation("p", 2)
        with pytest.raises(ArityError):
            rel.discard(("a",))

    def test_discard_bumps_version(self):
        rel = Relation("p", 1, [("a",)])
        v = rel.version
        rel.discard(("a",))
        assert rel.version > v

    def test_discard_patches_live_indexes(self):
        rel = Relation("p", 2, [("a", "b"), ("a", "c"), ("d", "e")])
        assert sorted(rel.lookup((0,), ("a",))) == [
            ("a", "b"), ("a", "c"),
        ]
        rel.discard(("a", "b"))
        # Same index object, no rebuild: the bucket was patched.
        assert rel.lookup((0,), ("a",)) == [("a", "c")]
        rel.discard(("a", "c"))
        assert rel.lookup((0,), ("a",)) == []
        assert rel.lookup((0,), ("d",)) == [("d", "e")]

    def test_discard_all_counts_present_only(self):
        rel = Relation("p", 1, [("a",), ("b",)])
        assert rel.discard_all([("a",), ("z",), ("b",)]) == 2
        assert len(rel) == 0

    def test_discard_all_bumps_version_once_per_batch(self):
        # Mirrors add_all: one += len(removed) batch increment, so the
        # fingerprint arithmetic matches a per-fact discard loop without
        # paying per-fact observer/index walks.
        rel = Relation("p", 1, [("a",), ("b",), ("c",)])
        v = rel.version
        assert rel.discard_all([("a",), ("z",), ("b",)]) == 2
        assert rel.version == v + 2
        assert rel.discard_all([("q",)]) == 0
        assert rel.version == v + 2

    def test_discard_all_patches_live_indexes_once(self):
        rel = Relation("p", 2, [("a", "b"), ("a", "c"), ("d", "e")])
        rel.lookup((0,), ("a",))  # force index build
        assert rel.discard_all([("a", "b"), ("a", "c"), ("x", "y")]) == 2
        assert rel.lookup((0,), ("a",)) == []
        assert rel.lookup((0,), ("d",)) == [("d", "e")]

    def test_discard_all_fires_observer_per_removed_fact(self):
        rel = Relation("p", 1, [("a",), ("b",)])
        events = []
        rel.observe(lambda r, f, s: events.append((f, s)))
        rel.discard_all([("a",), ("z",), ("b",)])
        assert events == [(("a",), -1), (("b",), -1)]

    def test_discard_all_arity_enforced(self):
        rel = Relation("p", 2)
        with pytest.raises(ArityError):
            rel.discard_all([("a", "b"), ("a",)])

    def test_database_remove_fact(self):
        db = Database.from_facts({"p": [("a",)]})
        assert db.remove_fact("p", ("a",))
        assert not db.remove_fact("p", ("a",))
        assert not db.remove_fact("missing", ("a",))


class TestObservers:
    def test_add_discard_clear_events(self):
        rel = Relation("p", 1)
        events = []
        rel.observe(lambda r, f, s: events.append((r.name, f, s)))
        rel.add(("a",))
        rel.add(("a",))            # duplicate: no event
        rel.discard(("a",))
        rel.discard(("a",))        # absent: no event
        rel.clear()
        assert events == [
            ("p", ("a",), 1), ("p", ("a",), -1), ("p", None, 0),
        ]

    def test_add_all_fires_per_new_fact(self):
        rel = Relation("p", 1, [("a",)])
        events = []
        rel.observe(lambda r, f, s: events.append((f, s)))
        rel.add_all([("a",), ("b",), ("c",)])
        assert events == [(("b",), 1), (("c",), 1)]

    def test_unobserve_bound_method_by_equality(self):
        # A bound method is a fresh object on every attribute access;
        # unobserve must match by equality or detach silently fails.
        class Sink:
            def __init__(self):
                self.events = []

            def on_event(self, rel, fact, sign):
                self.events.append((fact, sign))

        sink = Sink()
        rel = Relation("p", 1)
        rel.observe(sink.on_event)
        rel.add(("a",))
        rel.unobserve(sink.on_event)
        rel.add(("b",))
        assert sink.events == [(("a",), 1)]

    def test_database_observe_covers_future_relations(self):
        db = Database.from_facts({"p": [("a",)]})
        events = []
        db.observe(lambda r, f, s: events.append((r.name, f, s)))
        db.add_fact("p", ("b",))
        db.add_fact("q", ("x",))   # relation created after observe()
        assert events == [("p", ("b",), 1), ("q", ("x",), 1)]

    def test_database_attach_emits_reset(self):
        db = Database.from_facts({"p": [("a",)]})
        events = []
        db.observe(lambda r, f, s: events.append(s))
        db.attach(Relation("q", 1, [("x",)]), "q")
        assert 0 in events  # a mounted foreign extent is not a delta

    def test_copy_does_not_inherit_observers(self):
        db = Database.from_facts({"p": [("a",)]})
        events = []
        db.observe(lambda r, f, s: events.append(s))
        clone = db.copy()
        clone.add_fact("p", ("b",))
        assert events == []


class TestFingerprintCache:
    """The cached fingerprint must be indistinguishable from a fresh
    recomputation after arbitrary mutation sequences."""

    @staticmethod
    def _recompute(db):
        return tuple(
            (name, rel.arity, rel.version)
            for name, rel in sorted(db._relations.items())
        )

    def test_cached_equals_recomputed_after_mutations(self):
        db = Database.from_facts({"p": [("a",)], "q": [("x", "y")]})
        steps = [
            lambda: db.add_fact("p", ("b",)),
            lambda: db.remove_fact("p", ("a",)),
            lambda: db.add_fact("r", ("z",)),          # new relation
            lambda: db.relation("q").clear(),
            lambda: db.add_fact("q", ("x", "y")),
            lambda: db.ensure("s", 3),                 # empty relation
            lambda: db.attach(Relation("t", 1, [("w",)]), "t"),
            lambda: db.remove_fact("r", ("z",)),
        ]
        for step in steps:
            step()
            assert db.fingerprint() == self._recompute(db), step
            # And again: the second read is the cached path.
            assert db.fingerprint() == self._recompute(db)

    def test_repeated_reads_hit_the_cache(self):
        db = Database.from_facts({"p": [("a",)]})
        first = db.fingerprint()
        assert db.fingerprint() is first  # same cached tuple object

    def test_ensure_existing_does_not_invalidate(self):
        db = Database.from_facts({"p": [("a",)]})
        first = db.fingerprint()
        db.ensure("p", 1)
        assert db.fingerprint() is first

    def test_discard_is_visible_through_the_cache(self):
        # discard bumps the version, so the version-sum check must
        # reject the cached tuple even though membership shrank.
        db = Database.from_facts({"p": [("a",), ("b",)]})
        fp = db.fingerprint()
        db.remove_fact("p", ("b",))
        assert db.fingerprint() != fp
