"""Unit tests for relations and databases (storage + lazy indexes)."""

import pytest

from repro.datalog.atoms import atom
from repro.datalog.database import Database, Relation
from repro.datalog.errors import ArityError


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("p", 2)
        assert r.add(("a", "b"))
        assert ("a", "b") in r
        assert len(r) == 1

    def test_add_duplicate_returns_false(self):
        r = Relation("p", 2, [("a", "b")])
        assert not r.add(("a", "b"))
        assert len(r) == 1

    def test_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ArityError):
            r.add(("a",))

    def test_add_all_counts_new(self):
        r = Relation("p", 1)
        assert r.add_all([("a",), ("b",), ("a",)]) == 2

    def test_add_all_patches_live_indexes_once(self):
        r = Relation("p", 2, [("a", "b")])
        r.lookup((0,), ("a",))  # force index build
        assert r.add_all([("a", "z"), ("b", "c"), ("a", "b")]) == 2
        assert sorted(r.lookup((0,), ("a",))) == [("a", "b"), ("a", "z")]
        assert r.lookup((0,), ("b",)) == [("b", "c")]

    def test_add_all_arity_enforced(self):
        r = Relation("p", 2)
        with pytest.raises(ArityError):
            r.add_all([("a", "b"), ("c",)])

    def test_add_all_bumps_version_by_new_count(self):
        r = Relation("p", 1, [("a",)])
        v = r.version
        assert r.add_all([("a",), ("b",), ("c",)]) == 2
        assert r.version == v + 2

    def test_add_all_empty_batch_keeps_version(self):
        r = Relation("p", 1, [("a",)])
        v = r.version
        assert r.add_all([("a",)]) == 0
        assert r.version == v

    def test_lookup_builds_index(self):
        r = Relation("p", 2, [("a", "b"), ("a", "c"), ("x", "y")])
        assert sorted(r.lookup((0,), ("a",))) == [("a", "b"), ("a", "c")]
        assert r.lookup((0,), ("zzz",)) == []

    def test_lookup_multi_column(self):
        r = Relation("p", 3, [("a", "b", "c"), ("a", "b", "d"), ("a", "x", "c")])
        assert sorted(r.lookup((0, 1), ("a", "b"))) == [
            ("a", "b", "c"),
            ("a", "b", "d"),
        ]

    def test_lookup_empty_positions_returns_all(self):
        r = Relation("p", 1, [("a",), ("b",)])
        assert sorted(r.lookup((), ())) == [("a",), ("b",)]

    def test_index_updated_after_add(self):
        r = Relation("p", 2, [("a", "b")])
        r.lookup((0,), ("a",))  # force index build
        r.add(("a", "z"))
        assert sorted(r.lookup((0,), ("a",))) == [("a", "b"), ("a", "z")]

    def test_zero_arity_relation(self):
        r = Relation("p", 0)
        assert r.add(())
        assert () in r
        assert r.lookup((), ()) == [()]

    def test_distinct_values(self):
        r = Relation("p", 2, [("a", "b"), ("b", "c")])
        assert r.distinct_values() == {"a", "b", "c"}

    def test_distinct_values_cached_until_mutation(self):
        r = Relation("p", 2, [("a", "b")])
        first = r.distinct_values()
        assert first is r.distinct_values()  # same frozenset, no rescan
        r.add(("c", "d"))
        assert r.distinct_values() == {"a", "b", "c", "d"}

    def test_distinct_values_cache_survives_clear(self):
        r = Relation("p", 1, [("a",)])
        r.distinct_values()
        r.clear()
        assert r.distinct_values() == frozenset()

    def test_clear(self):
        r = Relation("p", 1, [("a",)])
        r.lookup((0,), ("a",))
        r.clear()
        assert len(r) == 0
        assert r.lookup((0,), ("a",)) == []


class TestDatabase:
    def test_from_facts(self):
        db = Database.from_facts({"p": [("a", "b")], "q": [("c",)]})
        assert db.size("p") == 1
        assert db.arity("q") == 1

    def test_missing_relation_reads_empty(self):
        db = Database()
        assert db.tuples("nope") == frozenset()
        assert db.size("nope") == 0
        assert db.arity("nope") is None

    def test_ensure_conflicting_arity(self):
        db = Database.from_facts({"p": [("a", "b")]})
        with pytest.raises(ArityError):
            db.ensure("p", 3)

    def test_add_ground_atom(self):
        db = Database()
        db.add_ground_atom(atom("p", "a", 3))
        assert ("a", 3) in db.tuples("p")

    def test_add_non_ground_atom_rejected(self):
        db = Database()
        with pytest.raises(ValueError):
            db.add_ground_atom(atom("p", "X"))

    def test_copy_is_independent(self):
        db = Database.from_facts({"p": [("a",)]})
        other = db.copy()
        other.add_fact("p", ("b",))
        assert db.size("p") == 1
        assert other.size("p") == 2

    def test_copy_preserves_attach_aliasing(self):
        # Regression: copy() used to clone a relation once per *name*,
        # so a relation attached under two names became two unrelated
        # relations in the copy and writes through one alias vanished
        # from the other.
        db = Database()
        shared = Relation("p", 1, [("a",)])
        db.attach(shared)
        db.attach(shared, "alias")
        other = db.copy()
        assert other.relation("p") is other.relation("alias")
        other.add_fact("alias", ("b",))
        assert other.size("p") == 2
        # ... while the copy still shares nothing with the original.
        assert db.size("p") == 1
        assert shared.tuples() == frozenset({("a",)})

    def test_copy_keeps_distinct_relations_distinct(self):
        db = Database()
        db.attach(Relation("p", 1, [("a",)]))
        db.attach(Relation("q", 1, [("a",)]))
        other = db.copy()
        other.add_fact("p", ("b",))
        assert other.size("q") == 1

    def test_attach_shares_relation(self):
        db = Database()
        shared = Relation("p", 1, [("a",)])
        db.attach(shared)
        shared.add(("b",))
        assert db.size("p") == 2

    def test_attach_under_alias(self):
        db = Database()
        db.attach(Relation("p", 1, [("a",)]), "alias")
        assert db.size("alias") == 1

    def test_distinct_constants(self):
        db = Database.from_facts({"p": [("a", "b")], "q": [("b", "c")]})
        assert db.distinct_constants() == {"a", "b", "c"}

    def test_distinct_constants_cached_until_mutation(self):
        db = Database.from_facts({"p": [("a",)]})
        first = db.distinct_constants()
        assert first is db.distinct_constants()
        db.add_fact("p", ("b",))
        assert db.distinct_constants() == {"a", "b"}

    def test_distinct_constants_cache_sees_alias_mutation(self):
        # The fingerprint key covers mutations made through an attach()
        # alias in another database, same as the engine's caches.
        db = Database.from_facts({"p": [("a",)]})
        assert db.distinct_constants() == {"a"}
        view = Database()
        view.attach(db.relation("p"), "q")
        view.add_fact("q", ("b",))
        assert db.distinct_constants() == {"a", "b"}

    def test_total_tuples(self):
        db = Database.from_facts({"p": [("a",), ("b",)], "q": [("c", "d")]})
        assert db.total_tuples() == 3

    def test_predicates_and_contains(self):
        db = Database.from_facts({"p": [("a",)]})
        assert db.predicates() == {"p"}
        assert "p" in db
        assert "q" not in db


class TestVersioning:
    """Relation.version / Database.fingerprint drive the Engine's
    base-materialization cache invalidation."""

    def test_version_bumps_on_new_fact_only(self):
        rel = Relation("p", 2)
        v0 = rel.version
        assert rel.add(("a", "b"))
        assert rel.version > v0
        v1 = rel.version
        assert not rel.add(("a", "b"))  # duplicate
        assert rel.version == v1

    def test_version_bumps_on_clear(self):
        rel = Relation("p", 1, [("a",)])
        v = rel.version
        rel.clear()
        assert rel.version > v

    def test_fingerprint_is_order_insensitive(self):
        a = Database.from_facts({"p": [("a",)], "q": [("b",)]})
        b = Database()
        b.ensure("q", 1)
        b.ensure("p", 1)
        b.add_fact("q", ("b",))
        b.add_fact("p", ("a",))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_on_mutation(self):
        db = Database.from_facts({"p": [("a",)]})
        fp = db.fingerprint()
        db.add_fact("p", ("b",))
        assert db.fingerprint() != fp

    def test_fingerprint_sees_new_relation(self):
        db = Database.from_facts({"p": [("a",)]})
        fp = db.fingerprint()
        db.ensure("q", 2)
        assert db.fingerprint() != fp

    def test_fingerprint_sees_mutation_through_alias(self):
        # attach() shares the Relation object, so a fact added through
        # the alias bumps the one shared version counter -- and the
        # fingerprint must change under *both* names.
        db = Database.from_facts({"p": [("a", "b")]})
        rel = db.relation("p")
        db.attach(rel, "view")
        fp = db.fingerprint()
        db.add_fact("view", ("c", "d"))
        assert db.fingerprint() != fp
        assert ("c", "d") in db.tuples("p")

    def test_fingerprint_sees_alias_mutated_in_other_database(self):
        # The sharing crosses Database objects too: a view database
        # mutating an attached relation invalidates the owner's
        # fingerprint (this is what keeps Engine caches honest when
        # evaluators build _with_pseudo-style views).
        owner = Database.from_facts({"p": [("a",)]})
        view = Database()
        view.attach(owner.relation("p"), "q")
        fp = owner.fingerprint()
        view.add_fact("q", ("b",))
        assert owner.fingerprint() != fp


class TestAliasCacheInvalidation:
    """Engine base-IDB caches must notice mutations made through an
    attach() alias of an EDB relation."""

    def test_engine_recomputes_after_alias_mutation(self):
        from repro.datalog.parser import parse_program
        from repro.engine import Engine

        parsed = parse_program(
            "tc(X, Y) :- e(X, Y).\n"
            "tc(X, Y) :- e(X, W) & tc(W, Y).\n"
            "e(a, b)."
        )
        engine = Engine(parsed.program, parsed.database)
        first = engine.query("tc(a, Y)?", strategy="seminaive")
        assert first.answers == frozenset({("a", "b")})

        alias = Database()
        alias.attach(parsed.database.relation("e"), "edges")
        alias.add_fact("edges", ("b", "c"))

        second = engine.query("tc(a, Y)?", strategy="seminaive")
        assert second.answers == frozenset({("a", "b"), ("a", "c")})
