"""Unit tests for rectification (Section 2's head-normalization)."""

import pytest

from repro.datalog.database import Database
from repro.datalog.joins import EQ
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.rectify import (
    canonical_head_variables,
    is_rectified,
    rectify_definition,
    rectify_program,
    rectify_rule,
)
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Variable


class TestIsRectified:
    def test_identical_clean_heads(self):
        rules = [
            parse_rule("t(X, Y) :- a(X, W) & t(W, Y)."),
            parse_rule("t(X, Y) :- t0(X, Y)."),
        ]
        assert is_rectified(rules)

    def test_differing_heads(self):
        rules = [
            parse_rule("t(X, Y) :- a(X, W) & t(W, Y)."),
            parse_rule("t(A, B) :- t0(A, B)."),
        ]
        assert not is_rectified(rules)

    def test_repeated_head_variable(self):
        assert not is_rectified([parse_rule("t(X, X) :- a(X).")])

    def test_head_constant(self):
        assert not is_rectified([parse_rule("t(X, c) :- a(X).")])

    def test_empty(self):
        assert is_rectified([])


class TestCanonicalHeadVariables:
    def test_default_names(self):
        assert canonical_head_variables(2) == (Variable("V1"), Variable("V2"))

    def test_avoids_clashes(self):
        fresh = canonical_head_variables(2, avoid=[Variable("V1")])
        assert Variable("V1") not in fresh
        assert len(set(fresh)) == 2


class TestRectifyRule:
    def test_plain_renaming(self):
        r = parse_rule("t(A, B) :- d(A, B).")
        result = rectify_rule(r, (Variable("V1"), Variable("V2")))
        assert result == parse_rule("t(V1, V2) :- d(V1, V2).")

    def test_repeated_head_variable_becomes_eq(self):
        r = parse_rule("t(X, X) :- b(X).")
        result = rectify_rule(r, (Variable("V1"), Variable("V2")))
        assert result.head == parse_rule("t(V1, V2) :- b(V1).").head
        eq_atoms = [a for a in result.body if a.predicate == EQ]
        assert len(eq_atoms) == 1
        assert set(eq_atoms[0].args) == {Variable("V1"), Variable("V2")}

    def test_head_constant_becomes_eq(self):
        r = parse_rule("t(a, Y) :- c(Y).")
        result = rectify_rule(r, (Variable("V1"), Variable("V2")))
        eq_atoms = [a for a in result.body if a.predicate == EQ]
        assert len(eq_atoms) == 1

    def test_body_variable_capture_avoided(self):
        # V1 already used as an unrelated body variable.
        r = parse_rule("t(X, Y) :- d(X, V1) & e(V1, Y).")
        result = rectify_rule(r, (Variable("V1"), Variable("V2")))
        # The old body V1 must have been renamed away from the new head V1.
        body_d = [a for a in result.body if a.predicate == "d"][0]
        assert body_d.args[0] == Variable("V1")
        assert body_d.args[1] != Variable("V1")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rectify_rule(parse_rule("t(X, Y) :- d(X, Y)."), (Variable("V1"),))


class TestRectifyDefinition:
    def test_already_rectified_returned_unchanged(self):
        rules = [
            parse_rule("t(X, Y) :- a(X, W) & t(W, Y)."),
            parse_rule("t(X, Y) :- t0(X, Y)."),
        ]
        assert rectify_definition(rules) == rules

    def test_heads_unified(self):
        rules = [
            parse_rule("t(X, Y) :- a(X, W) & t(W, Y)."),
            parse_rule("t(A, B) :- t0(A, B)."),
        ]
        rectified = rectify_definition(rules)
        assert is_rectified(rectified)
        assert rectified[0].head == rectified[1].head


class TestSemanticsPreserved:
    """Rectified programs must compute the same relations."""

    @pytest.mark.parametrize(
        "text",
        [
            # repeated head variable
            "t(X, X) :- b(X).\nt(X, Y) :- e(X, Y).",
            # head constant
            "t(a, Y) :- c(Y).\nt(X, Y) :- e(X, Y).",
            # mixed heads in a recursion
            "t(A, B) :- e(A, W) & t(W, B).\nt(X, X) :- b(X).",
        ],
    )
    def test_same_extent(self, text):
        parsed = parse_program(text)
        db = Database.from_facts(
            {
                "b": [("m",), ("n",)],
                "c": [("m",), ("q",)],
                "e": [("m", "n"), ("n", "q"), ("q", "m")],
            }
        )
        original = seminaive_evaluate(parsed.program, db)
        rectified = rectify_program(parsed.program)
        result = seminaive_evaluate(rectified, db)
        assert result.tuples("t") == original.tuples("t")

    def test_rule_order_preserved(self):
        parsed = parse_program(
            "t(X, X) :- b(X).\nother(Y) :- b(Y).\nt(X, Y) :- e(X, Y)."
        )
        rectified = rectify_program(parsed.program)
        heads = [r.head.predicate for r in rectified.rules]
        assert heads == ["t", "other", "t"]
