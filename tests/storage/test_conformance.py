"""Backend conformance: every storage backend, one behavioural contract.

Each test runs against every registered backend (the in-memory
reference and SQLite) through the same ``RelationStorage`` surface the
evaluators use.  The point is byte-level interchangeability: versions,
observer events, planner statistics and pickles must be identical no
matter where the tuples live, because the differential oracle and the
bench gates compare them across backends.
"""

import pickle

import pytest

from repro.datalog.database import Database, Relation
from repro.datalog.errors import ArityError
from repro.observability import Tracer
from repro.storage import (
    BACKENDS,
    MemoryBackend,
    RelationStorage,
    StorageBackend,
    resolve_backend,
)


@pytest.fixture(params=list(BACKENDS))
def backend(request):
    return resolve_backend(request.param)


def make(backend, name="p", arity=2, tuples=()):
    return backend.make_relation(name, arity, tuples)


class TestProtocol:
    def test_backend_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_relation_satisfies_protocol(self, backend):
        assert isinstance(make(backend), RelationStorage)

    def test_memory_backend_makes_plain_relations(self):
        rel = MemoryBackend().make_relation("p", 2, [("a", "b")])
        assert type(rel) is Relation


class TestMutation:
    def test_add_contains_len(self, backend):
        rel = make(backend)
        assert rel.add(("a", "b"))
        assert not rel.add(("a", "b"))
        assert ("a", "b") in rel
        assert ("b", "a") not in rel
        assert len(rel) == 1 and bool(rel)

    def test_discard(self, backend):
        rel = make(backend, tuples=[("a", "b"), ("c", "d")])
        assert rel.discard(("a", "b"))
        assert not rel.discard(("a", "b"))
        assert rel.tuples() == frozenset([("c", "d")])

    def test_clear(self, backend):
        rel = make(backend, tuples=[("a", "b")])
        rel.clear()
        assert len(rel) == 0 and not bool(rel)

    def test_bulk_counts_effective_rows_only(self, backend):
        rel = make(backend, arity=1, tuples=[("a",)])
        assert rel.add_all([("a",), ("b",), ("c",), ("b",)]) == 2
        assert rel.discard_all([("b",), ("z",), ("c",)]) == 2
        assert rel.tuples() == frozenset([("a",)])

    def test_arity_enforced_everywhere(self, backend):
        rel = make(backend)
        for op in (rel.add, rel.discard):
            with pytest.raises(ArityError):
                op(("a",))
        for op in (rel.add_all, rel.discard_all):
            with pytest.raises(ArityError):
                op([("a", "b"), ("a",)])

    def test_iteration_snapshot(self, backend):
        rel = make(backend, arity=1, tuples=[("a",), ("b",)])
        assert sorted(rel) == [("a",), ("b",)]
        assert rel.tuples() == frozenset([("a",), ("b",)])


class TestVersioning:
    def test_single_ops_bump_once_noops_not_at_all(self, backend):
        rel = make(backend, arity=1)
        v = rel.version
        rel.add(("a",))
        assert rel.version == v + 1
        rel.add(("a",))
        assert rel.version == v + 1
        rel.discard(("a",))
        assert rel.version == v + 2
        rel.discard(("a",))
        assert rel.version == v + 2
        rel.clear()
        assert rel.version == v + 3

    def test_bulk_ops_bump_by_effective_count(self, backend):
        # One version bump per effective row, applied as a single batch
        # increment -- Database.fingerprint() sums versions, so both
        # backends must agree on the arithmetic, not just monotonicity.
        rel = make(backend, arity=1, tuples=[("a",)])
        v = rel.version
        rel.add_all([("a",), ("b",), ("c",)])
        assert rel.version == v + 2
        rel.add_all([])
        assert rel.version == v + 2
        rel.discard_all([("b",), ("c",), ("z",)])
        assert rel.version == v + 4

    def test_fingerprint_identical_across_backends(self, backend):
        facts = {"e": [("a", "b"), ("b", "c")], "v": [("a",)]}
        reference = Database.from_facts(facts)
        db = Database.from_facts(facts, backend=backend)
        assert db.fingerprint() == reference.fingerprint()
        db.add_fact("e", ("c", "d"))
        reference.add_fact("e", ("c", "d"))
        assert db.fingerprint() == reference.fingerprint()


class TestObservers:
    def test_event_stream_matches_reference_semantics(self, backend):
        rel = make(backend, arity=1)
        events = []
        rel.observe(lambda r, f, s: events.append((r.name, f, s)))
        rel.add(("a",))
        rel.add(("a",))            # duplicate: no event
        rel.discard(("a",))
        rel.discard(("a",))        # absent: no event
        rel.clear()
        assert events == [
            ("p", ("a",), 1), ("p", ("a",), -1), ("p", None, 0),
        ]

    def test_bulk_ops_fire_per_effective_fact(self, backend):
        rel = make(backend, arity=1, tuples=[("a",)])
        events = []
        rel.observe(lambda r, f, s: events.append((f, s)))
        rel.add_all([("a",), ("b",), ("c",)])
        rel.discard_all([("c",), ("z",)])
        assert events == [(("b",), 1), (("c",), 1), (("c",), -1)]

    def test_unobserve_bound_method_by_equality(self, backend):
        class Sink:
            def __init__(self):
                self.events = []

            def on_event(self, rel, fact, sign):
                self.events.append((fact, sign))

        sink = Sink()
        rel = make(backend, arity=1)
        rel.observe(sink.on_event)
        rel.add(("a",))
        rel.unobserve(sink.on_event)
        rel.add(("b",))
        assert sink.events == [(("a",), 1)]


class TestLookup:
    def test_lookup_matches_projection(self, backend):
        rel = make(backend, tuples=[("a", "b"), ("a", "c"), ("d", "e")])
        assert sorted(rel.lookup((0,), ("a",))) == [("a", "b"), ("a", "c")]
        assert rel.lookup((1,), ("e",)) == [("d", "e")]
        assert rel.lookup((0, 1), ("d", "e")) == [("d", "e")]
        assert rel.lookup((0,), ("zz",)) == []

    def test_empty_positions_full_scan(self, backend):
        rel = make(backend, tuples=[("a", "b"), ("c", "d")])
        tracer = Tracer()
        assert sorted(rel.lookup((), ())) == [("a", "b"), ("c", "d")]
        rel.lookup((), (), tracer=tracer)
        assert tracer.counter_total("full_scans") == 1
        assert tracer.counter_total("index_builds") == 0

    def test_index_built_lazily_once_per_column_set(self, backend):
        rel = make(backend, tuples=[("a", "b"), ("c", "d"), ("a", "e")])
        tracer = Tracer()
        rel.lookup((0,), ("a",), tracer=tracer)
        assert tracer.counter_total("index_builds") == 1
        assert tracer.counter_total("index_tuples") == 3
        rel.lookup((0,), ("c",), tracer=tracer)
        assert tracer.counter_total("index_builds") == 1  # cached
        rel.lookup((1,), ("d",), tracer=tracer)
        assert tracer.counter_total("index_builds") == 2

    def test_lookup_sees_mutations_after_index_build(self, backend):
        rel = make(backend, tuples=[("a", "b")])
        rel.lookup((0,), ("a",))
        rel.add_all([("a", "z"), ("q", "r")])
        rel.discard(("a", "b"))
        assert rel.lookup((0,), ("a",)) == [("a", "z")]
        assert rel.lookup((0,), ("q",)) == [("q", "r")]


class TestPlannerStatistics:
    FACTS = [(f"x{i % 7}", f"y{i}") for i in range(40)]

    def test_statistics_identical_across_backends(self, backend):
        rel = make(backend, tuples=self.FACTS)
        reference = Relation("p", 2, self.FACTS)
        assert rel.distinct_values() == reference.distinct_values()
        assert rel.column_distinct_counts() \
            == reference.column_distinct_counts()
        # The crc32-minwise sample must be byte-identical: sampled
        # join-containment estimates feed the cost planner, and the
        # differential oracle runs it on both backends.
        assert rel.sample(8) == reference.sample(8)
        assert rel.sample(64) == reference.sample(64)

    def test_statistics_cached_per_version(self, backend):
        rel = make(backend, tuples=[("a", "b")])
        assert rel.sample() is rel.sample()
        first = rel.column_distinct_counts()
        assert rel.column_distinct_counts() is first
        rel.add(("c", "d"))
        assert rel.column_distinct_counts() == (2, 2)
        assert rel.distinct_values() == frozenset(["a", "b", "c", "d"])


class TestCopiesAndPickles:
    def test_copy_is_independent(self, backend):
        rel = make(backend, tuples=[("a", "b")])
        clone = rel.copy()
        clone.add(("c", "d"))
        rel.discard(("a", "b"))
        assert clone.tuples() == frozenset([("a", "b"), ("c", "d")])
        assert rel.tuples() == frozenset()

    def test_snapshot_reads_current_state(self, backend):
        rel = make(backend, tuples=[("a", "b")])
        snap = rel.snapshot()
        assert snap.tuples() == frozenset([("a", "b")])
        assert snap.version == rel.version

    def test_pickle_round_trip(self, backend):
        rel = make(backend, tuples=[("a", "b"), ("c", "d")])
        rel.lookup((0,), ("a",))  # indexes must not leak into the payload
        copy = pickle.loads(pickle.dumps(rel))
        assert copy.name == rel.name and copy.arity == rel.arity
        assert copy.tuples() == rel.tuples()
        assert copy.version == rel.version
        assert copy.add(("e", "f"))  # writable, observers dropped

    def test_database_copy_preserves_aliasing(self, backend):
        db = Database.from_facts({"e": [("a", "b")]}, backend=backend)
        db.attach(db.relation("e"), "alias")
        clone = db.copy()
        clone.add_fact("alias", ("c", "d"))
        assert ("c", "d") in clone.tuples("e")
        assert ("c", "d") not in db.tuples("e")

    def test_database_pickle_preserves_aliasing(self, backend):
        db = Database.from_facts({"e": [("a", "b")]}, backend=backend)
        db.attach(db.relation("e"), "alias")
        copy = pickle.loads(pickle.dumps(db))
        copy.add_fact("alias", ("c", "d"))
        assert ("c", "d") in copy.tuples("e")

    def test_with_backend_round_trip(self, backend):
        db = Database.from_facts({"e": [("a", "b")], "v": [("x",)]})
        db.attach(db.relation("e"), "alias")
        moved = db.with_backend(backend)
        assert moved.backend_name == backend.name
        assert moved.tuples("e") == db.tuples("e")
        assert moved.tuples("v") == db.tuples("v")
        moved.add_fact("alias", ("c", "d"))
        assert ("c", "d") in moved.tuples("e")
        back = moved.with_backend(None)
        assert back.backend_name == "memory"
        assert back.tuples("e") == moved.tuples("e")
