"""SQLite-backend specifics: durability, snapshots, spec resolution.

The conformance suite (``test_conformance.py``) pins the shared
protocol; these tests pin what only the out-of-core backend does --
the durable WAL file, pinned read-only snapshots, the schema registry
that makes reopening a file discover its relations, and end-to-end
answer equality through the engine.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.engine import Engine
from repro.storage import (
    MemoryBackend,
    ReadOnlyRelationError,
    SQLiteBackend,
    ensure_backend,
    resolve_backend,
)


class TestSpecResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_backend(None), MemoryBackend)
        assert isinstance(resolve_backend("memory"), MemoryBackend)
        assert isinstance(resolve_backend("sqlite"), SQLiteBackend)
        assert resolve_backend("sqlite").path is None

    def test_path_qualified_spec(self, tmp_path):
        target = tmp_path / "facts.db"
        backend = resolve_backend(f"sqlite:{target}")
        assert backend.path == str(target)

    def test_backend_objects_pass_through(self):
        backend = SQLiteBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("postgres")
        with pytest.raises(ValueError):
            resolve_backend(42)

    def test_ensure_backend_memory_is_a_noop(self):
        db = Database.from_facts({"e": [("a", "b")]})
        assert ensure_backend(db, None) is db
        assert ensure_backend(db, "memory") is db

    def test_ensure_backend_migrates_and_back(self):
        db = Database.from_facts({"e": [("a", "b")]})
        moved = ensure_backend(db, "sqlite")
        assert moved is not db and moved.backend_name == "sqlite"
        assert moved.tuples("e") == db.tuples("e")
        assert ensure_backend(moved, "sqlite") is moved
        back = ensure_backend(moved, "memory")
        assert back.backend_name == "memory"
        assert back.tuples("e") == db.tuples("e")


class TestDurability:
    def test_facts_survive_reopening_the_file(self, tmp_path):
        target = str(tmp_path / "facts.db")
        db = ensure_backend(
            Database.from_facts({"e": [("a", "b")], "unit": [()]}),
            f"sqlite:{target}",
        )
        db.add_fact("e", ("b", "c"))
        del db

        reopened = ensure_backend(Database(), f"sqlite:{target}")
        # The repro_schema registry remounts relations the incoming
        # (empty) database never mentioned -- including the arity-0
        # one, which the column count alone could not identify.
        assert reopened.tuples("e") == frozenset([("a", "b"), ("b", "c")])
        assert reopened.tuples("unit") == frozenset([()])
        assert reopened.relation("unit").arity == 0

    def test_existing_relations_registry(self, tmp_path):
        target = str(tmp_path / "facts.db")
        backend = SQLiteBackend(target)
        backend.make_relation("e", 2, [("a", "b")])
        backend.make_relation("unit", 0)
        assert SQLiteBackend(target).existing_relations() == [
            ("e", 2), ("unit", 0),
        ]
        assert SQLiteBackend().existing_relations() == []

    def test_scratch_leaves_the_durable_file_alone(self, tmp_path):
        # Evaluator copies derive relations on a scratch backend; the
        # shared file must never see them.
        target = str(tmp_path / "facts.db")
        db = ensure_backend(
            Database.from_facts({"e": [("a", "b")]}), f"sqlite:{target}"
        )
        copy = db.copy()
        copy.add_fact("derived", ("x", "y"))
        copy.add_fact("e", ("zz", "ww"))
        assert db.tuples("e") == frozenset([("a", "b")])
        names = [n for n, _ in SQLiteBackend(target).existing_relations()]
        assert names == ["e"]


class TestSnapshots:
    def test_temp_mode_snapshot_is_frozen(self):
        rel = SQLiteBackend().make_relation("p", 2, [("a", "b")])
        snap = rel.snapshot()
        with pytest.raises(ReadOnlyRelationError):
            snap.add(("c", "d"))
        with pytest.raises(ReadOnlyRelationError):
            snap.discard_all([("a", "b")])
        with pytest.raises(ReadOnlyRelationError):
            snap.clear()
        assert snap.tuples() == frozenset([("a", "b")])

    def test_wal_snapshot_is_isolated_from_later_commits(self, tmp_path):
        target = str(tmp_path / "facts.db")
        rel = SQLiteBackend(target).make_relation("p", 2, [("a", "b")])
        snap = rel.snapshot()
        rel.add(("c", "d"))
        rel.discard(("a", "b"))
        # The pinned read transaction still sees the snapshot state
        # while the live relation has moved on -- no tuples copied.
        assert snap.tuples() == frozenset([("a", "b")])
        assert rel.tuples() == frozenset([("c", "d")])
        assert snap.lookup((0,), ("a",)) == [("a", "b")]
        with pytest.raises(ReadOnlyRelationError):
            snap.add(("e", "f"))

    def test_database_snapshot_over_durable_backend(self, tmp_path):
        target = str(tmp_path / "facts.db")
        db = ensure_backend(
            Database.from_facts({"e": [("a", "b")]}), f"sqlite:{target}"
        )
        snap = db.snapshot()
        db.add_fact("e", ("b", "c"))
        assert snap.tuples("e") == frozenset([("a", "b")])
        assert db.tuples("e") == frozenset([("a", "b"), ("b", "c")])


class TestEngineEquivalence:
    TEXT = (
        "tc(X, Y) :- e(X, W) & tc(W, Y).\n"
        "tc(X, Y) :- e(X, Y).\n"
        "e(a, b). e(b, c). e(c, d). e(b, d)."
    )

    @pytest.mark.parametrize(
        "strategy", ["seminaive", "separable", "magic"]
    )
    def test_answers_match_memory_reference(self, strategy):
        parsed = parse_program(self.TEXT)
        reference = Engine(parsed.program, parsed.database).query(
            "tc(a, Y)?", strategy=strategy
        )
        parsed_sqlite = parse_program(self.TEXT)
        engine = Engine(
            parsed_sqlite.program, parsed_sqlite.database,
            backend="sqlite",
        )
        assert engine.edb.backend_name == "sqlite"
        result = engine.query("tc(a, Y)?", strategy=strategy)
        assert result.answers == reference.answers

    def test_engine_backend_none_leaves_edb_untouched(self):
        parsed = parse_program(self.TEXT)
        engine = Engine(parsed.program, parsed.database)
        assert engine.edb is parsed.database
