"""Property-based tests: every strategy agrees with semi-naive on random
separable recursions, queries, and databases (cyclic ones included)."""

from hypothesis import HealthCheck, given, settings

from repro.budget import Budget
from repro.core.api import evaluate_separable
from repro.core.detection import analyze_recursion, require_separable
from repro.datalog.errors import BudgetExceeded, CyclicDataError
from repro.rewriting.counting import (
    CountingNotApplicable,
    evaluate_counting,
)
from repro.rewriting.magic import evaluate_magic

from ..conftest import oracle_answers
from .strategies import queries_for, separable_setups

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@COMMON
@given(setup=separable_setups())
def test_generated_programs_are_separable(setup):
    """The generator's 'separable by construction' claim, checked
    against the Definition 2.4 detector."""
    program, _, _, _ = setup
    report = analyze_recursion(program, "t")
    assert report.separable, report.explain()


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_separable_matches_oracle(data):
    (program, db, _, _), query = data
    analysis = require_separable(program, "t")
    expected = oracle_answers(program, db, query)
    got = evaluate_separable(program, db, query, analysis=analysis)
    assert got == expected, (
        f"program:\n{program}\nquery: {query}\n"
        f"got {sorted(got, key=repr)}\nexpected {sorted(expected, key=repr)}"
    )


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_magic_matches_oracle(data):
    (program, db, _, _), query = data
    expected = oracle_answers(program, db, query)
    got = evaluate_magic(program, db, query)
    assert got == expected, (
        f"program:\n{program}\nquery: {query}"
    )


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_counting_matches_oracle_when_applicable(data):
    (program, db, _, _), query = data
    try:
        # Tight limits: cyclic data makes the descent explore p^level
        # paths, so let it fail fast rather than grind to the pigeonhole
        # bound.  BudgetExceeded cases are skipped, not asserted.
        got = evaluate_counting(
            program, db, query,
            budget=Budget(max_relation_tuples=20_000),
            max_levels=24,
        )
    except (CountingNotApplicable, CyclicDataError, BudgetExceeded):
        return  # outside the method's class (or cyclic data): fine
    expected = oracle_answers(program, db, query)
    assert got == expected, (
        f"program:\n{program}\nquery: {query}"
    )


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_algebra_backend_matches_direct(data):
    """The relational-algebra backend executes every compiled plan to
    the same seen_2 set as the direct evaluator."""
    from repro.core.algebra import execute_plan_algebra
    from repro.core.compiler import compile_selection
    from repro.core.evaluator import execute_plan
    from repro.core.selections import classify_selection

    (program, db, _, _), query = data
    analysis = require_separable(program, "t")
    selection = classify_selection(analysis, query)
    if not selection.is_full:
        return  # plans exist only for full selections
    plan = compile_selection(selection)
    direct = execute_plan(plan, db, [selection.seed])
    algebra = execute_plan_algebra(plan, db, [selection.seed])
    assert direct == algebra, f"program:\n{program}\nquery: {query}"


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_justifications_reconstructible(data):
    """Every answer of a traced full-selection run has a justification
    whose derivation string reproduces the answer (Lemma 3.1)."""
    from repro.core.provenance import execute_plan_traced, justify
    from repro.core.compiler import compile_selection
    from repro.core.selections import classify_selection
    from repro.datalog.atoms import Atom
    from repro.datalog.expansion import string_for_derivation
    from repro.datalog.terms import Constant

    (program, db, _, _), query = data
    analysis = require_separable(program, "t")
    selection = classify_selection(analysis, query)
    if not selection.is_full:
        return
    plan = compile_selection(selection)
    answers, trace = execute_plan_traced(plan, db, [selection.seed])
    definition = program.definition("t")
    for up_tuple in answers:
        justification = justify(trace, up_tuple)
        values = [None] * analysis.arity
        for p in plan.selected_positions:
            values[p] = selection.bound[p]
        for col, p in enumerate(plan.up_positions):
            values[p] = up_tuple[col]
        full = tuple(values)
        string = string_for_derivation(
            definition,
            Atom("t", tuple(Constant(v) for v in full)),
            justification.derivation,
            justification.exit_index,
        )
        assert full in string.query().evaluate(db), (
            f"program:\n{program}\nquery: {query}\nanswer {full} not "
            f"justified by {justification}"
        )
