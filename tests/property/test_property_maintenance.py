"""Property-based delta-oracle tests for incremental maintenance.

Random mutation sequences (inserts and deletes, cyclic EDBs included)
run against random :class:`SeparableLayout` recursions; after *every*
prefix of the sequence the repaired view must agree answer-for-answer
with a from-scratch semi-naive evaluation of the mutated base, the
reported net IDB delta must describe exactly the extent transition, and
derivation counts must stay exact and positive.

The example count scales with ``REPRO_MAINT_EXAMPLES`` (CI's
maintenance-smoke job sets 200; the default keeps local runs quick).
``derandomize`` keeps the CI run reproducible -- a failure there is a
failure everywhere.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.seminaive import seminaive_evaluate
from repro.maintenance import MaintainedView

from .strategies import CONSTANTS, separable_setups

MAINT_EXAMPLES = int(os.environ.get("REPRO_MAINT_EXAMPLES", "40"))

COMMON = settings(
    max_examples=MAINT_EXAMPLES,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def mutation_sequences(draw, db):
    """Draw ``[("add" | "del", relation, fact), ...]`` over ``db``'s EDB.

    Deletes are biased toward facts present in the *initial* database
    (so DRed actually fires) but may also name arbitrary or
    already-deleted facts, exercising the no-op paths.
    """
    names = sorted(db.predicates())
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        name = draw(st.sampled_from(names))
        arity = db.arity(name)
        kind = draw(st.sampled_from(["add", "del"]))
        existing = sorted(db.tuples(name))
        if kind == "del" and existing and draw(st.booleans()):
            fact = draw(st.sampled_from(existing))
        else:
            fact = tuple(
                draw(st.sampled_from(CONSTANTS)) for _ in range(arity)
            )
        ops.append((kind, name, fact))
    return ops


def _idb_extents(program, db):
    return {
        pred: set(db.tuples(pred)) for pred in program.idb_predicates
    }


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: mutation_sequences(setup[1]).map(
        lambda ops: (setup[0], setup[1], ops)
    )
))
def test_every_prefix_matches_the_serial_oracle(data):
    program, edb, ops = data
    view = MaintainedView(program, edb)
    for step, (kind, name, fact) in enumerate(ops):
        before = _idb_extents(program, view.db)
        if kind == "add":
            delta = {name: (frozenset([fact]), frozenset())}
            edb.add_fact(name, fact)
        else:
            delta = {name: (frozenset(), frozenset([fact]))}
            edb.remove_fact(name, fact)
        changes = view.apply(delta)

        # Answer-for-answer equality with a from-scratch evaluation of
        # the mutated base, at every prefix.
        oracle = seminaive_evaluate(program, edb)
        after = _idb_extents(program, view.db)
        for pred, want in _idb_extents(program, oracle).items():
            assert after[pred] == want, (step, kind, name, fact, pred)

        # The reported net delta is exactly the extent transition.
        for pred in program.idb_predicates:
            added, removed = changes.get(
                pred, (frozenset(), frozenset())
            )
            assert added == after[pred] - before[pred], (step, pred)
            assert removed == before[pred] - after[pred], (step, pred)

        # Counts track membership and never go non-positive.
        for pred in program.idb_predicates:
            assert set(view.counts.get(pred, {})) == after[pred], (
                step, pred,
            )
            for derived, count in view.counts.get(pred, {}).items():
                assert count >= 1, (step, pred, derived, count)


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: mutation_sequences(setup[1]).map(
        lambda ops: (setup[0], setup[1], ops)
    )
))
def test_final_counts_are_exact(data):
    """After the whole sequence, per-fact derivation counts equal a
    from-scratch recount (the expensive oracle, checked once)."""
    program, edb, ops = data
    view = MaintainedView(program, edb)
    for kind, name, fact in ops:
        if kind == "add":
            view.apply({name: (frozenset([fact]), frozenset())})
            edb.add_fact(name, fact)
        else:
            view.apply({name: (frozenset(), frozenset([fact]))})
            edb.remove_fact(name, fact)
    fresh = MaintainedView(program, edb)
    for pred in program.idb_predicates:
        assert view.counts.get(pred, {}) == fresh.counts.get(pred, {}), (
            pred,
        )
