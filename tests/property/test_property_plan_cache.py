"""Compiled join kernel vs interpreted join: semantic equivalence.

:func:`repro.datalog.joins.evaluate_body` compiles bodies into cached
:class:`~repro.datalog.plan_cache.JoinPlan` kernels; this suite pins
the property the whole refactor rests on -- for any body the corpus
layouts can produce (recursive conjunctions, repeated variables, eq/2
atoms, pre-bound variables), the kernel enumerates exactly the binding
set the reference interpreter does, under both join orders.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.joins import (
    EQ,
    evaluate_body,
    evaluate_body_interpreted,
    evaluate_body_project,
)
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Variable

from .strategies import CONSTANTS, separable_setups

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _binding_set(results):
    return frozenset(frozenset(b.items()) for b in results)


def _body_variables(body):
    return sorted(
        {t for a in body for t in a.args if isinstance(t, Variable)},
        key=lambda v: v.name,
    )


@st.composite
def _corpus_bodies(draw):
    """A (database, body, initial bindings) triple over corpus layouts.

    The body is a rule body from the shared separable generator --
    evaluated over the materialized fixpoint so recursive atoms are
    non-empty -- optionally extended with an eq/2 atom over its own
    variables (placed anywhere, including before its binders) and with
    some variables pre-bound.
    """
    program, db, _classes, _pers = draw(separable_setups())
    full = seminaive_evaluate(program, db)
    rule = draw(st.sampled_from(list(program.rules)))
    body = list(rule.body)

    variables = _body_variables(body)
    if variables and draw(st.booleans()):
        a = draw(st.sampled_from(variables))
        b = (
            draw(st.sampled_from(variables))
            if draw(st.booleans())
            else Variable("Fresh")
        )
        position = draw(st.integers(min_value=0, max_value=len(body)))
        body.insert(position, Atom(EQ, (a, b)))

    initial = {}
    for v in variables:
        if draw(st.booleans()):
            initial[v] = draw(st.sampled_from(CONSTANTS))

    return full, tuple(body), initial


@COMMON
@given(case=_corpus_bodies())
def test_compiled_matches_interpreted(case):
    db, body, initial = case
    for order in ("greedy", "left_to_right"):
        compiled = _binding_set(
            evaluate_body(db, body, initial_bindings=initial, order=order)
        )
        interpreted = _binding_set(
            evaluate_body_interpreted(
                db, body, initial_bindings=initial, order=order
            )
        )
        assert compiled == interpreted, order


@COMMON
@given(case=_corpus_bodies())
def test_projection_matches_dict_path(case):
    db, body, initial = case
    output = tuple(_body_variables(body))
    projected = set(
        evaluate_body_project(
            db, body, output, initial_bindings=initial
        )
    )
    expected = {
        tuple(b[v] for v in output)
        for b in evaluate_body(db, body, initial_bindings=initial)
    }
    assert projected == expected
