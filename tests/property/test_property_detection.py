"""Fuzz-style properties of the detector and related analyses.

Detection must never crash on arbitrary (safe or unsafe, linear or
not) programs, must be consistent with its own report, and must be
sound: whenever it says "separable", the Separable evaluation agrees
with semi-naive on random data.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detection import analyze_recursion
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.programs import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

from ..conftest import oracle_answers

COMMON = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

VARS = [Variable(n) for n in ("X", "Y", "W", "Z", "U")]
CONSTS = ["a", "b", "c", "d"]


@st.composite
def arbitrary_recursions(draw):
    """Random rule sets for one binary/ternary predicate ``t`` --
    deliberately NOT constrained to be separable, safe, or linear."""
    arity = draw(st.integers(min_value=1, max_value=3))
    rule_count = draw(st.integers(min_value=1, max_value=4))
    rules = []
    edb_names = ["e1", "e2", "e3"]
    for _ in range(rule_count):
        head = Atom(
            "t",
            tuple(draw(st.sampled_from(VARS)) for _ in range(arity)),
        )
        body_len = draw(st.integers(min_value=1, max_value=3))
        body = []
        for _ in range(body_len):
            use_t = draw(st.booleans())
            if use_t:
                body.append(
                    Atom(
                        "t",
                        tuple(
                            draw(st.sampled_from(VARS))
                            for _ in range(arity)
                        ),
                    )
                )
            else:
                body.append(
                    Atom(
                        draw(st.sampled_from(edb_names)),
                        (
                            draw(st.sampled_from(VARS)),
                            draw(st.sampled_from(VARS)),
                        ),
                    )
                )
        rules.append(Rule(head, tuple(body)))
    db = Database()
    for name in edb_names:
        db.ensure(name, 2)
        for _ in range(draw(st.integers(min_value=0, max_value=5))):
            db.add_fact(
                name,
                (draw(st.sampled_from(CONSTS)), draw(st.sampled_from(CONSTS))),
            )
    db.ensure("t0", arity)
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        db.add_fact(
            "t0",
            tuple(draw(st.sampled_from(CONSTS)) for _ in range(arity)),
        )
    # Give every program an exit rule so prerequisite failures vary.
    if draw(st.booleans()):
        head_vars = tuple(VARS[:arity])
        rules.append(Rule(Atom("t", head_vars), (Atom("t0", head_vars),)))
    return Program(rules), db, arity


@COMMON
@given(data=arbitrary_recursions())
def test_detection_never_crashes(data):
    program, _, _ = data
    report = analyze_recursion(program, "t")
    # The explanation must always render.
    assert isinstance(report.explain(), str)
    # Internal consistency: separable implies all conditions hold and
    # the analysis is present.
    if report.separable:
        assert all(c.holds for c in report.conditions)
        assert report.analysis is not None
    if report.prerequisites:
        assert not report.separable


@COMMON
@given(
    data=arbitrary_recursions(),
    constant=st.sampled_from(CONSTS),
)
def test_separable_verdicts_are_sound(data, constant):
    """If the detector accepts, the algorithm agrees with the oracle."""
    from repro.core.api import evaluate_separable
    from repro.datalog.errors import NotFullSelectionError

    program, db, arity = data
    report = analyze_recursion(program, "t")
    if not report.separable:
        return
    query = Atom(
        "t",
        (Constant(constant),)
        + tuple(Variable(f"Q{i}") for i in range(arity - 1)),
    )
    try:
        got = evaluate_separable(
            program, db, query, analysis=report.analysis
        )
    except NotFullSelectionError:
        return  # queries with no constants can't arise here, but be safe
    assert got == oracle_answers(program, db, query), (
        f"program:\n{program}\nquery: {query}"
    )


@COMMON
@given(data=arbitrary_recursions())
def test_magic_handles_everything_detection_rejects(data):
    """The fallback strategy works wherever Separable does not apply
    (the paper: 'it must supplement more general algorithms')."""
    from repro.datalog.errors import SafetyError
    from repro.rewriting.magic import evaluate_magic

    program, db, arity = data
    report = analyze_recursion(program, "t")
    if report.separable:
        return
    if not program.is_safe():
        return  # unsafe programs are rejected upstream of any strategy
    query = Atom(
        "t",
        (Constant("a"),)
        + tuple(Variable(f"Q{i}") for i in range(arity - 1)),
    )
    assert evaluate_magic(program, db, query) == oracle_answers(
        program, db, query
    ), f"program:\n{program}\nquery: {query}"
