"""Hypothesis strategies generating random separable recursions + EDBs.

The generator constructs programs that are separable *by construction*:

* pick an arity ``k`` and partition the positions into up to three
  equivalence classes plus a persistent remainder;
* for each class, emit 1-3 recursive rules whose nonrecursive subgoals
  form one connected set touching exactly that class's columns in both
  the head and the recursive body instance (one wide atom, or a chain of
  two atoms linked by an existential variable);
* close with the exit rule ``t(V1..Vk) :- t0(V1..Vk).``.

EDB facts are drawn over a small constant pool so cycles and converging
paths arise naturally.  The detector is asserted to accept every
generated program, so these strategies double as a fuzz test of
Definition 2.4's implementation.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.programs import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

CONSTANTS = [f"c{i}" for i in range(6)]


@st.composite
def separable_setups(draw):
    """Draw ``(program, database, class position lists, pers positions)``."""
    arity = draw(st.integers(min_value=1, max_value=4))
    class_count = draw(st.integers(min_value=0, max_value=min(3, arity)))
    assignment = [
        draw(st.integers(min_value=0, max_value=class_count))
        for _ in range(arity)
    ]
    # class id 0 means persistent; 1..class_count are real classes.
    class_positions: dict[int, list[int]] = {}
    for position, cls in enumerate(assignment):
        if cls > 0:
            class_positions.setdefault(cls, []).append(position)

    head_vars = tuple(Variable(f"V{i + 1}") for i in range(arity))
    rules: list[Rule] = []
    edb_specs: list[tuple[str, int]] = []

    for cls_index, positions in sorted(class_positions.items()):
        width = len(positions)
        rule_count = draw(st.integers(min_value=1, max_value=3))
        for r in range(rule_count):
            body_vars = {p: Variable(f"W{p + 1}") for p in positions}
            recursive_args = tuple(
                body_vars.get(p, head_vars[p]) for p in range(arity)
            )
            name = f"e{cls_index}_{r}"
            two_atoms = draw(st.booleans())
            if two_atoms:
                mid = Variable("M")
                first = Atom(
                    name + "a",
                    tuple(head_vars[p] for p in positions) + (mid,),
                )
                second = Atom(
                    name + "b",
                    (mid,) + tuple(body_vars[p] for p in positions),
                )
                nonrec = (first, second)
                edb_specs.append((name + "a", width + 1))
                edb_specs.append((name + "b", width + 1))
            else:
                atom = Atom(
                    name,
                    tuple(head_vars[p] for p in positions)
                    + tuple(body_vars[p] for p in positions),
                )
                nonrec = (atom,)
                edb_specs.append((name, 2 * width))
            rules.append(
                Rule(
                    Atom("t", head_vars),
                    nonrec + (Atom("t", recursive_args),),
                )
            )

    rules.append(
        Rule(Atom("t", head_vars), (Atom("t0", head_vars),))
    )
    edb_specs.append(("t0", arity))

    db = Database()
    for name, pred_arity in edb_specs:
        db.ensure(name, pred_arity)
        tuple_count = draw(st.integers(min_value=0, max_value=8))
        for _ in range(tuple_count):
            fact = tuple(
                draw(st.sampled_from(CONSTANTS)) for _ in range(pred_arity)
            )
            db.add_fact(name, fact)

    pers = [p for p, cls in enumerate(assignment) if cls == 0]
    classes = [sorted(v) for _, v in sorted(class_positions.items())]
    return Program(rules), db, classes, pers


@st.composite
def queries_for(draw, arity: int, classes, pers):
    """Draw a query atom for the generated recursion.

    Bindings are chosen to cover all interesting cases: full class
    selections, persistent selections, partial selections, and mixes.
    """
    mode = draw(
        st.sampled_from(["full_class", "pers", "random", "all_bound"])
    )
    bound: set[int] = set()
    if mode == "full_class" and classes:
        bound |= set(draw(st.sampled_from(classes)))
    elif mode == "pers" and pers:
        bound.add(draw(st.sampled_from(pers)))
    elif mode == "all_bound":
        bound = set(range(arity))
    else:
        for p in range(arity):
            if draw(st.booleans()):
                bound.add(p)
        if not bound:
            bound.add(draw(st.integers(min_value=0, max_value=arity - 1)))
    args = tuple(
        Constant(draw(st.sampled_from(CONSTANTS)))
        if p in bound
        else Variable(f"Q{p}")
        for p in range(arity)
    )
    return Atom("t", args)
