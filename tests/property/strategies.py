"""Hypothesis strategies generating random separable recursions + EDBs.

Program construction is shared with the seeded differential fuzzer:
both describe a recursion as a
:class:`repro.differential.layouts.SeparableLayout` (arity, class
assignment, per-class rule shapes) and build rules through
:func:`repro.differential.layouts.build_separable`, so the property
suite and ``repro-datalog fuzz`` can never drift apart structurally:

* pick an arity ``k`` and partition the positions into up to three
  equivalence classes plus a persistent remainder;
* for each class, emit 1-3 recursive rules whose nonrecursive subgoals
  form one connected set touching exactly that class's columns in both
  the head and the recursive body instance (one wide atom, or a chain of
  two atoms linked by an existential variable);
* close with the exit rule ``t(V1..Vk) :- t0(V1..Vk).``.

EDB facts are drawn over a small constant pool so cycles and converging
paths arise naturally.  The detector is asserted to accept every
generated program, so these strategies double as a fuzz test of
Definition 2.4's implementation.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.terms import Constant, Variable
from repro.differential.layouts import (
    RuleSpec,
    SeparableLayout,
    build_separable,
)

CONSTANTS = [f"c{i}" for i in range(6)]


@st.composite
def separable_layouts(draw):
    """Draw a :class:`SeparableLayout` (shape only, no data)."""
    arity = draw(st.integers(min_value=1, max_value=4))
    class_count = draw(st.integers(min_value=0, max_value=min(3, arity)))
    assignment = [
        draw(st.integers(min_value=0, max_value=class_count))
        for _ in range(arity)
    ]
    # Class id 0 means persistent; renumber the used ids so they are
    # contiguous 1..n as the layout invariant requires.
    used = sorted({c for c in assignment if c > 0})
    renumber = {c: i + 1 for i, c in enumerate(used)}
    assignment = tuple(renumber.get(c, 0) for c in assignment)

    specs: list[RuleSpec] = []
    for cls in sorted(renumber.values()):
        rule_count = draw(st.integers(min_value=1, max_value=3))
        for r in range(rule_count):
            specs.append(
                RuleSpec(
                    class_index=cls,
                    rule_number=r,
                    two_atoms=draw(st.booleans()),
                )
            )
    return SeparableLayout(
        arity=arity, assignment=assignment, rule_specs=tuple(specs)
    )


@st.composite
def separable_setups(draw):
    """Draw ``(program, database, class position lists, pers positions)``."""
    layout = draw(separable_layouts())
    built = build_separable(layout)

    db = Database()
    for name, pred_arity in built.edb_specs:
        db.ensure(name, pred_arity)
        tuple_count = draw(st.integers(min_value=0, max_value=8))
        for _ in range(tuple_count):
            fact = tuple(
                draw(st.sampled_from(CONSTANTS)) for _ in range(pred_arity)
            )
            db.add_fact(name, fact)

    return (
        built.program,
        db,
        layout.classes,
        list(layout.pers_positions),
    )


@st.composite
def queries_for(draw, arity: int, classes, pers):
    """Draw a query atom for the generated recursion.

    Bindings are chosen to cover all interesting cases: full class
    selections, persistent selections, partial selections, and mixes.
    """
    mode = draw(
        st.sampled_from(["full_class", "pers", "random", "all_bound"])
    )
    bound: set[int] = set()
    if mode == "full_class" and classes:
        bound |= set(draw(st.sampled_from(classes)))
    elif mode == "pers" and pers:
        bound.add(draw(st.sampled_from(pers)))
    elif mode == "all_bound":
        bound = set(range(arity))
    else:
        for p in range(arity):
            if draw(st.booleans()):
                bound.add(p)
        if not bound:
            bound.add(draw(st.integers(min_value=0, max_value=arity - 1)))
    args = tuple(
        Constant(draw(st.sampled_from(CONSTANTS)))
        if p in bound
        else Variable(f"Q{p}")
        for p in range(arity)
    )
    return Atom("t", args)
