"""Join-order properties of :func:`repro.datalog.joins.evaluate_body`.

The two offered orders must be *semantically* interchangeable (the
docstring's "results are identical, only the work differs") and the
greedy heuristic must actually reduce work on the workload it was built
for -- a selection probing into a chain, where left-to-right starts
from an unbound recursive atom and fetches the whole materialized
closure while greedy starts from the bound base atom.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.joins import evaluate_body
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable
from repro.stats import EvaluationStats
from repro.workloads.generators import chain

from .strategies import separable_setups

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _binding_set(db, body, order, initial=None, stats=None):
    return frozenset(
        frozenset(b.items())
        for b in evaluate_body(
            db, body, initial_bindings=initial, stats=stats, order=order
        )
    )


@COMMON
@given(setup=separable_setups())
def test_greedy_and_left_to_right_agree_on_random_conjunctions(setup):
    """Both orders enumerate exactly the same substitutions.

    The bodies come from the shared separable-recursion generator, so
    they are the conjunctions every evaluator in the package actually
    runs: a recursive atom plus connected nonrecursive subgoals, over a
    random small EDB (the recursive predicate's extent is materialized
    first so its atoms are not vacuously empty).
    """
    program, db, _classes, _pers = setup
    full = seminaive_evaluate(program, db)
    for rule in program.rules:
        assert _binding_set(full, rule.body, "greedy") == _binding_set(
            full, rule.body, "left_to_right"
        )


@COMMON
@given(
    n=st.integers(min_value=3, max_value=30),
    start=st.integers(min_value=0, max_value=29),
)
def test_greedy_examines_no_more_than_left_to_right_on_chains(n, start):
    """On a bound chain probe, greedy work <= left-to-right work.

    Body ``tc(W, Y) & e(X, W)`` with ``X`` pre-bound: left-to-right
    must fetch the whole O(n^2) closure for the unbound ``tc`` atom;
    greedy picks the bound ``e`` atom first and only walks the suffix.
    Binding sets still agree (the semantic property above, pinned on
    the workload where the work actually differs).
    """
    start = start % n
    program = parse_program(
        "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
    ).program
    db = Database.from_facts({"e": chain(n)})
    full = seminaive_evaluate(program, db)

    body = (
        Atom("tc", (Variable("W"), Variable("Y"))),
        Atom("e", (Variable("X"), Variable("W"))),
    )
    initial = {Variable("X"): f"a{start}"}

    greedy_stats = EvaluationStats()
    l2r_stats = EvaluationStats()
    greedy = _binding_set(full, body, "greedy", initial, greedy_stats)
    l2r = _binding_set(full, body, "left_to_right", initial, l2r_stats)

    assert greedy == l2r
    assert greedy_stats.tuples_examined <= l2r_stats.tuples_examined
    if start < n - 2:
        # The probe matched something, so the gap is strict: l2r paid
        # for the whole closure, greedy for one out-edge plus a suffix.
        assert greedy_stats.tuples_examined < l2r_stats.tuples_examined
