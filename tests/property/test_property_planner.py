"""Property-based tests: cost-based join orders are answer-preserving.

The planner only permutes joins, so ``order="cost"`` and
``order="adaptive"`` must be observably identical to ``greedy`` and
``left_to_right`` on every body and query the differential corpus
layouts can produce -- including eq/2 atoms rectification placed before
their binders (the PR 4 deferral edge case, which the planner's
index-level deferral pass must preserve).
"""

from hypothesis import HealthCheck, given, settings

from repro.datalog.joins import evaluate_body
from repro.datalog.plan_cache import ORDERS
from repro.engine import Engine

from .strategies import queries_for, separable_setups
from .test_property_plan_cache import _binding_set, _corpus_bodies

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@COMMON
@given(case=_corpus_bodies())
def test_cost_orders_match_greedy_on_corpus_bodies(case):
    """Body-level equivalence, eq-before-binders placements included."""
    db, body, initial = case
    reference = _binding_set(
        evaluate_body(db, body, initial_bindings=initial, order="greedy")
    )
    for order in ("left_to_right", "cost", "adaptive"):
        assert _binding_set(
            evaluate_body(
                db, body, initial_bindings=initial, order=order
            )
        ) == reference, order


@COMMON
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_orders_answer_equivalent_end_to_end(data):
    """Query-level equivalence: one engine per order, same answers."""
    (program, db, _, _), query = data
    answers = {}
    for order in ORDERS:
        engine = Engine(program, db, order=order)
        result = engine.query(query, strategy="seminaive")
        answers[order] = result.answers
    reference = answers["greedy"]
    for order, got in answers.items():
        assert got == reference, (
            f"order {order}: program:\n{program}\nquery: {query}\n"
            f"got {sorted(got, key=repr)}\n"
            f"expected {sorted(reference, key=repr)}"
        )
