"""Property-based tests for the Datalog substrate itself."""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.conjunctive import ConjunctiveQuery, containment_mapping
from repro.datalog.database import Database
from repro.datalog.joins import evaluate_body, instantiate_args
from repro.datalog.naive import naive_evaluate
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.programs import Program
from repro.datalog.rules import Rule
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Constant, Variable

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

CONSTS = ["a", "b", "c", "d"]
VARS = [Variable(n) for n in ("X", "Y", "Z", "W")]


@st.composite
def small_bodies(draw):
    """A conjunction of 1-3 binary atoms over few vars, plus facts."""
    atom_count = draw(st.integers(min_value=1, max_value=3))
    predicates = ["p", "q", "r"]
    body = []
    for _ in range(atom_count):
        pred = draw(st.sampled_from(predicates))
        args = tuple(
            draw(
                st.one_of(
                    st.sampled_from(VARS),
                    st.sampled_from([Constant(c) for c in CONSTS]),
                )
            )
            for _ in range(2)
        )
        body.append(Atom(pred, args))
    db = Database()
    for pred in predicates:
        db.ensure(pred, 2)
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            db.add_fact(
                pred,
                (draw(st.sampled_from(CONSTS)), draw(st.sampled_from(CONSTS))),
            )
    return tuple(body), db


def brute_force(db, body):
    """All satisfying substitutions by exhaustive enumeration."""
    variables = sorted(
        {v for a in body for v in a.variable_set()}, key=lambda v: v.name
    )
    results = set()
    for values in itertools.product(CONSTS, repeat=len(variables)):
        binding = dict(zip(variables, values))
        ok = True
        for a in body:
            fact = tuple(
                t.value if isinstance(t, Constant) else binding[t]
                for t in a.args
            )
            if fact not in db.tuples(a.predicate):
                ok = False
                break
        if ok:
            results.add(tuple(binding[v] for v in variables))
    return results


@COMMON
@given(data=small_bodies())
def test_join_matches_brute_force(data):
    body, db = data
    variables = sorted(
        {v for a in body for v in a.variable_set()}, key=lambda v: v.name
    )
    got = {
        tuple(b[v] for v in variables)
        for b in evaluate_body(db, body, order="greedy")
    }
    assert got == brute_force(db, body)


@COMMON
@given(data=small_bodies())
def test_greedy_equals_left_to_right(data):
    body, db = data
    variables = sorted(
        {v for a in body for v in a.variable_set()}, key=lambda v: v.name
    )

    def run(order):
        return {
            tuple(b[v] for v in variables)
            for b in evaluate_body(db, body, order=order)
        }

    assert run("greedy") == run("left_to_right")


@st.composite
def random_programs(draw):
    """Random safe Datalog programs over binary predicates (possibly
    nonlinear, possibly mutually recursive) plus a random EDB."""
    idb = ["s", "t"]
    edb = ["e", "f"]
    rules = []
    for head_pred in idb:
        rule_count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(rule_count):
            body_len = draw(st.integers(min_value=1, max_value=3))
            body = []
            for _ in range(body_len):
                pred = draw(st.sampled_from(idb + edb))
                args = tuple(
                    draw(st.sampled_from(VARS)) for _ in range(2)
                )
                body.append(Atom(pred, args))
            body_vars = {v for a in body for v in a.variable_set()}
            if not body_vars:
                continue
            head_args = tuple(
                draw(st.sampled_from(sorted(body_vars, key=str)))
                for _ in range(2)
            )
            rules.append(Rule(Atom(head_pred, head_args), tuple(body)))
    # ensure every IDB predicate keeps at least one rule
    for head_pred in idb:
        if not any(r.head.predicate == head_pred for r in rules):
            rules.append(
                Rule(
                    Atom(head_pred, (VARS[0], VARS[1])),
                    (Atom("e", (VARS[0], VARS[1])),),
                )
            )
    db = Database()
    for pred in edb:
        db.ensure(pred, 2)
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            db.add_fact(
                pred,
                (draw(st.sampled_from(CONSTS)), draw(st.sampled_from(CONSTS))),
            )
    return Program(rules), db


@COMMON
@given(data=random_programs())
def test_naive_equals_seminaive(data):
    program, db = data
    naive_result = naive_evaluate(program, db)
    semi_result = seminaive_evaluate(program, db)
    for pred in program.idb_predicates:
        assert naive_result.tuples(pred) == semi_result.tuples(pred), (
            f"disagreement on {pred} for program:\n{program}"
        )


@st.composite
def conjunctive_query_pairs(draw):
    """Two conjunctive queries over shared predicates, plus a database."""
    def one_query():
        body_len = draw(st.integers(min_value=1, max_value=3))
        body = tuple(
            Atom(
                draw(st.sampled_from(["p", "q"])),
                (draw(st.sampled_from(VARS)), draw(st.sampled_from(VARS))),
            )
            for _ in range(body_len)
        )
        body_vars = sorted(
            {v for a in body for v in a.variable_set()}, key=str
        )
        head = (draw(st.sampled_from(body_vars)),)
        return ConjunctiveQuery(head, body)

    db = Database()
    for pred in ("p", "q"):
        db.ensure(pred, 2)
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            db.add_fact(
                pred,
                (draw(st.sampled_from(CONSTS)), draw(st.sampled_from(CONSTS))),
            )
    return one_query(), one_query(), db


@COMMON
@given(data=conjunctive_query_pairs())
def test_containment_mapping_soundness(data):
    """If a containment mapping q1 -> q2 exists, then answers(q2) is a
    subset of answers(q1) on every database (here: a random one)."""
    q1, q2, db = data
    if containment_mapping(q1, q2) is not None:
        assert q2.evaluate(db) <= q1.evaluate(db), (
            f"q1: {q1}\nq2: {q2}"
        )


@COMMON
@given(
    rule_text=st.sampled_from(
        [
            "t(X, Y) :- a(X, W) & t(W, Y).",
            "t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).",
            "p(X) :- q(X, X).",
        ]
    ),
    suffix=st.integers(min_value=0, max_value=99),
)
def test_rename_round_trip_parses(rule_text, suffix):
    r = parse_rule(rule_text).rename(suffix)
    assert parse_rule(str(r)) == r
