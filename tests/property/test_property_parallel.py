"""Property-based tests: the worker-pool evaluator agrees with serial
Separable evaluation on random separable recursions and queries, and
degenerate layouts (no classes at all, one class) survive every worker
count."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.engine import Engine
from repro.parallel import ParallelConfig, get_executor

from .strategies import queries_for, separable_setups

# Leaner than the serial property suites: every example pays real IPC.
PARALLEL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@PARALLEL_SETTINGS
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_parallel_matches_serial(data):
    (program, db, _, _), query = data
    analysis = require_separable(program, "t")
    serial = evaluate_separable(program, db, query, analysis=analysis)
    executor = get_executor(ParallelConfig.eager(2))
    parallel = evaluate_separable(
        program, db, query, analysis=analysis, parallel=executor
    )
    assert parallel == serial, (
        f"program:\n{program}\nquery: {query}\n"
        f"parallel {sorted(parallel, key=repr)}\n"
        f"serial {sorted(serial, key=repr)}"
    )


def _degenerate_workloads():
    # Zero classes: the layout generator's degenerate case is the
    # exit-only recursion (every position persistent, no descent at
    # all -- the executor must stay entirely out of the way).
    pers = parse_program("t(X, Y) :- t0(X, Y).").program
    pers_db = Database.from_facts({
        "t0": [("a", "b"), ("c", "d")],
    })
    # One class covering the whole tuple: a plain chain closure.
    single = parse_program(
        """
        t(X) :- a(X, X1) & t(X1).
        t(X) :- t0(X).
        """
    ).program
    single_db = Database.from_facts({
        "a": [(f"x{i}", f"x{i + 1}") for i in range(6)],
        "t0": [("x6",)],
    })
    return [
        pytest.param(pers, pers_db, "t(a, b)?", id="zero-class"),
        pytest.param(pers, pers_db, "t(a, Y)?", id="zero-class-open"),
        pytest.param(single, single_db, "t(x0)?", id="single-class"),
    ]


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("program,db,query", _degenerate_workloads())
def test_degenerate_layouts_at_every_worker_count(
    program, db, query, workers
):
    serial = Engine(program, db).query(query, strategy="separable")
    executor = get_executor(ParallelConfig.eager(workers))
    results = [
        Engine(program, db).query(
            query, strategy="separable", parallel=executor
        )
        for _ in range(2)
    ]
    for result in results:
        assert result.answers == serial.answers
        assert result.stats.tuples_produced == \
            serial.stats.tuples_produced
        assert result.stats.iterations == serial.stats.iterations
