"""Property-based tests: the worker-pool evaluator agrees with serial
Separable evaluation on random separable recursions and queries, and
degenerate layouts (no classes at all, one class) survive every worker
count."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.engine import Engine
from repro.observability import Tracer, trace_violations
from repro.parallel import ParallelConfig, get_executor

from .strategies import queries_for, separable_setups

# Leaner than the serial property suites: every example pays real IPC.
PARALLEL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@PARALLEL_SETTINGS
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_parallel_matches_serial(data):
    (program, db, _, _), query = data
    analysis = require_separable(program, "t")
    serial = evaluate_separable(program, db, query, analysis=analysis)
    executor = get_executor(ParallelConfig.eager(2))
    parallel = evaluate_separable(
        program, db, query, analysis=analysis, parallel=executor
    )
    assert parallel == serial, (
        f"program:\n{program}\nquery: {query}\n"
        f"parallel {sorted(parallel, key=repr)}\n"
        f"serial {sorted(serial, key=repr)}"
    )


# Tracing every example adds fragment round-trips on top of the IPC,
# so this property runs fewer cases than the answer-equality one.
STITCH_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _rule_totals(tracer) -> dict:
    from repro.observability import reconciled_counter_totals

    return {
        name: value
        for name, value in reconciled_counter_totals(tracer).items()
        if name.startswith(("rule_apps:", "rule_out:"))
        or name == "iterations"
    }


@STITCH_SETTINGS
@given(data=separable_setups().flatmap(
    lambda setup: queries_for(
        setup[0].arity("t"), setup[2], setup[3]
    ).map(lambda q: (setup, q))
))
def test_stitched_rule_counters_match_serial(data):
    """Stitched parallel traces agree with serial on every per-rule
    counter and the iteration count, over random separable layouts.

    Scan-shaped counters (``tuples_examined`` etc.) legitimately
    diverge on the partitioned-carry path -- see
    tests/parallel/test_trace_stitching.py for the two reconciliation
    strengths -- but rule accounting is replayed by the parent and
    must never drift, whichever parallel axis a given layout/query
    pair happens to exercise.
    """
    (program, db, _, _), query = data
    analysis = require_separable(program, "t")
    serial_tracer = Tracer()
    serial = evaluate_separable(
        program, db, query, analysis=analysis, tracer=serial_tracer
    )
    executor = get_executor(ParallelConfig.eager(2))
    stitched_tracer = Tracer()
    parallel = evaluate_separable(
        program, db, query, analysis=analysis,
        tracer=stitched_tracer, parallel=executor,
    )
    assert parallel == serial
    assert _rule_totals(stitched_tracer) == _rule_totals(serial_tracer), (
        f"program:\n{program}\nquery: {query}"
    )
    assert trace_violations(stitched_tracer) == []


def _degenerate_workloads():
    # Zero classes: the layout generator's degenerate case is the
    # exit-only recursion (every position persistent, no descent at
    # all -- the executor must stay entirely out of the way).
    pers = parse_program("t(X, Y) :- t0(X, Y).").program
    pers_db = Database.from_facts({
        "t0": [("a", "b"), ("c", "d")],
    })
    # One class covering the whole tuple: a plain chain closure.
    single = parse_program(
        """
        t(X) :- a(X, X1) & t(X1).
        t(X) :- t0(X).
        """
    ).program
    single_db = Database.from_facts({
        "a": [(f"x{i}", f"x{i + 1}") for i in range(6)],
        "t0": [("x6",)],
    })
    return [
        pytest.param(pers, pers_db, "t(a, b)?", id="zero-class"),
        pytest.param(pers, pers_db, "t(a, Y)?", id="zero-class-open"),
        pytest.param(single, single_db, "t(x0)?", id="single-class"),
    ]


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("program,db,query", _degenerate_workloads())
def test_degenerate_layouts_at_every_worker_count(
    program, db, query, workers
):
    serial = Engine(program, db).query(query, strategy="separable")
    executor = get_executor(ParallelConfig.eager(workers))
    results = [
        Engine(program, db).query(
            query, strategy="separable", parallel=executor
        )
        for _ in range(2)
    ]
    for result in results:
        assert result.answers == serial.answers
        assert result.stats.tuples_produced == \
            serial.stats.tuples_produced
        assert result.stats.iterations == serial.stats.iterations
