"""Tests for [AU79] selection pushing (stable columns)."""

import pytest

from repro.core.api import evaluate_separable
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.engine import Engine
from repro.rewriting.selection_push import (
    StablePushNotApplicable,
    evaluate_pushed,
    push_selection,
    stable_positions,
)
from repro.stats import EvaluationStats
from repro.workloads.paper import example_1_1_program, example_1_2_program

from ..conftest import oracle_answers


class TestStablePositions:
    def test_example_1_1_pers_column_is_stable(self):
        # Column 2 (Y) never changes; column 1 does.
        assert stable_positions(example_1_1_program(), "buys") == (1,)

    def test_example_1_2_nothing_stable(self):
        assert stable_positions(example_1_2_program(), "buys") == ()

    def test_nonlinear_rule_all_occurrences_checked(self):
        program = parse_program(
            """
            t(X, Y) :- t(X, W) & t(W, Y) & tag(X).
            t(X, Y) :- e(X, Y).
            """
        ).program
        # X stable in the first occurrence but not the second, Y vice
        # versa -- neither column is stable.
        assert stable_positions(program, "t") == ()

    def test_nonlinear_with_genuinely_stable_column(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, W) & p(X, V) & join(W, V, Y).
            p(X, Y) :- base(X, Y).
            """
        ).program
        assert stable_positions(program, "p") == (0,)

    def test_nonrecursive_definition_all_stable(self):
        program = parse_program("q(X, Y) :- e(X, Y).").program
        assert stable_positions(program, "q") == (0, 1)


class TestPushSelection:
    def test_rewrite_substitutes_constant(self):
        program, sigma, pushed = push_selection(
            example_1_1_program(), parse_atom("buys(X, camera)")
        )
        assert pushed == {1: "camera"}
        texts = {str(r) for r in program.rules}
        assert (
            f"{sigma}(X, camera) :- friend(X, W) & {sigma}(W, camera)."
            in texts
        )
        assert f"{sigma}(X, camera) :- perfectFor(X, camera)." in texts

    def test_unstable_selection_rejected(self):
        with pytest.raises(StablePushNotApplicable):
            push_selection(
                example_1_2_program(), parse_atom("buys(tom, Y)")
            )

    def test_conflicting_head_constant_drops_rule(self):
        program = parse_program(
            """
            t(X, special) :- a(X).
            t(X, normal) :- b(X).
            """
        ).program
        rewritten, sigma, _ = push_selection(
            program, parse_atom("t(X, normal)")
        )
        sigma_rules = rewritten.rules_for(sigma)
        assert len(sigma_rules) == 1
        assert sigma_rules[0].body[0].predicate == "b"


class TestEvaluatePushed:
    DB = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann"), ("kim", "tom")],
            "idol": [("tom", "ann")],
            "perfectFor": [("ann", "camera"), ("sue", "boat")],
        }
    )

    def test_matches_oracle_on_pers_query(self):
        program = example_1_1_program()
        query = parse_atom("buys(X, camera)")
        assert evaluate_pushed(program, self.DB, query) == oracle_answers(
            program, self.DB, query
        )

    def test_matches_separable_on_pers_query(self):
        """The paper: on stable columns of a separable recursion, [AU79]
        'produces an instance of our algorithm'."""
        program = example_1_1_program()
        query = parse_atom("buys(X, camera)")
        assert evaluate_pushed(program, self.DB, query) == (
            evaluate_separable(program, self.DB, query)
        )

    def test_residual_constant_filtered(self):
        program = example_1_1_program()
        query = parse_atom("buys(tom, camera)")  # col 1 unstable: filter
        assert evaluate_pushed(program, self.DB, query) == oracle_answers(
            program, self.DB, query
        )

    def test_cyclic_data(self):
        program = example_1_1_program()
        db = self.DB.copy()
        db.add_fact("friend", ("ann", "kim"))
        query = parse_atom("buys(X, boat)")
        assert evaluate_pushed(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_nonseparable_but_stable(self):
        """Pushing applies where Separable does not: a nonlinear
        recursion with a stable first column."""
        program = parse_program(
            """
            p(X, Y) :- p(X, W) & p(X, V) & join(W, V, Y).
            p(X, Y) :- base(X, Y).
            """
        ).program
        db = Database.from_facts(
            {
                "base": [("g", "a"), ("g", "b"), ("h", "a")],
                "join": [("a", "b", "c"), ("c", "c", "d")],
            }
        )
        query = parse_atom("p(g, Y)")
        assert evaluate_pushed(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_stats_record_sigma_relation(self):
        program = example_1_1_program()
        stats = EvaluationStats()
        evaluate_pushed(
            program, self.DB, parse_atom("buys(X, camera)"), stats=stats
        )
        sigma_sizes = [
            size
            for name, size in stats.relation_sizes.items()
            if "sigma" in name
        ]
        assert sigma_sizes and max(sigma_sizes) >= 1


class TestEngineIntegration:
    def test_pushdown_strategy(self):
        program = example_1_1_program()
        engine = Engine(program, TestEvaluatePushed.DB)
        result = engine.query("buys(X, camera)?", strategy="pushdown")
        assert result.strategy == "pushdown"
        assert result.answers == engine.query(
            "buys(X, camera)?", strategy="seminaive"
        ).answers

    def test_pushdown_rejects_unstable(self):
        program = example_1_2_program()
        engine = Engine(program, Database())
        with pytest.raises(StablePushNotApplicable):
            engine.query("buys(tom, Y)?", strategy="pushdown")
