"""Tests for the no-dedup ablation (Figure 2 without lines 5/12)."""

import pytest

from repro.core.compiler import compile_selection
from repro.core.detection import require_separable
from repro.core.evaluator import execute_plan
from repro.core.selections import classify_selection
from repro.datalog.database import Database
from repro.datalog.errors import CyclicDataError
from repro.datalog.parser import parse_atom, parse_program
from repro.rewriting.nodedup import execute_plan_nodedup
from repro.stats import EvaluationStats
from repro.workloads.generators import chain, cycle, grid

TC = "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e0(X, Y)."


def make_plan(program_text, query_text):
    program = parse_program(program_text).program
    query = parse_atom(query_text)
    analysis = require_separable(program, query.predicate)
    selection = classify_selection(analysis, query)
    return compile_selection(selection), selection


class TestAcyclicEquivalence:
    def test_same_answers_on_chain(self):
        plan, sel = make_plan(TC, "tc(a0, Y)")
        db = Database.from_facts(
            {"e": chain(10), "e0": [("a9", "end")]}
        )
        with_dedup = execute_plan(plan, db, [sel.seed])
        without = execute_plan_nodedup(plan, db, [sel.seed])
        assert with_dedup == without

    def test_same_answers_on_grid(self):
        plan, sel = make_plan(TC, "tc(g0_0, Y)")
        db = Database.from_facts(
            {"e": grid(4, 4), "e0": [("g3_3", "end")]}
        )
        assert execute_plan(plan, db, [sel.seed]) == execute_plan_nodedup(
            plan, db, [sel.seed]
        )


class TestDuplicateWork:
    def test_shortcut_chain_produces_more_tuples_without_dedup(self):
        """On a DAG where nodes are reachable at several distances (a
        chain with skip edges), the no-dedup iteration re-expands nodes
        once per distance: the dedup of lines 5/12 is what keeps the
        Separable algorithm linear."""
        n = 12
        edges = chain(n) + [
            (f"a{i}", f"a{i + 2}") for i in range(n - 2)
        ]
        plan, sel = make_plan(TC, "tc(a0, Y)")
        db = Database.from_facts(
            {"e": edges, "e0": [(f"a{n - 1}", "end")]}
        )
        dedup_stats = EvaluationStats()
        execute_plan(plan, db, [sel.seed], stats=dedup_stats)
        nodedup_stats = EvaluationStats()
        execute_plan_nodedup(plan, db, [sel.seed], stats=nodedup_stats)
        assert (
            nodedup_stats.tuples_produced > dedup_stats.tuples_produced
        )
        assert (
            nodedup_stats.iterations > dedup_stats.iterations
        )


class TestCyclicFailure:
    def test_cycle_raises(self):
        plan, sel = make_plan(TC, "tc(a0, Y)")
        db = Database.from_facts(
            {"e": cycle(6), "e0": [("a3", "end")]}
        )
        with pytest.raises(CyclicDataError):
            execute_plan_nodedup(plan, db, [sel.seed])
        # ... while the real evaluator terminates on the same input.
        assert execute_plan(plan, db, [sel.seed]) == frozenset(
            {("end",)}
        )

    def test_self_loop_raises(self):
        plan, sel = make_plan(TC, "tc(a, Y)")
        db = Database.from_facts(
            {"e": [("a", "a")], "e0": [("a", "end")]}
        )
        with pytest.raises(CyclicDataError):
            execute_plan_nodedup(plan, db, [sel.seed])

    def test_stats_attached_to_error(self):
        plan, sel = make_plan(TC, "tc(a0, Y)")
        db = Database.from_facts({"e": cycle(4), "e0": [("a0", "x")]})
        stats = EvaluationStats()
        with pytest.raises(CyclicDataError) as excinfo:
            execute_plan_nodedup(plan, db, [sel.seed], stats=stats)
        assert excinfo.value.stats is stats
