"""Unit tests for adornments and sideways information passing."""

from repro.datalog.parser import parse_atom, parse_program
from repro.rewriting.adornment import (
    AdornedAtom,
    adorn_program,
    adorned_name,
    adornment_from_query,
)
from repro.workloads.paper import example_1_2_program


class TestAdornmentFromQuery:
    def test_bound_free(self):
        assert adornment_from_query(parse_atom("buys(tom, Y)")) == "bf"

    def test_all_free(self):
        assert adornment_from_query(parse_atom("buys(X, Y)")) == "ff"

    def test_all_bound(self):
        assert adornment_from_query(parse_atom("buys(tom, 3)")) == "bb"

    def test_adorned_name(self):
        assert adorned_name("buys", "bf") == "buys__bf"


class TestAdornProgram:
    def test_example_1_2_single_adornment(self):
        adorned, qa = adorn_program(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        assert qa == "bf"
        assert set(adorned) == {("buys", "bf")}
        rules = adorned[("buys", "bf")]
        assert len(rules) == 3

    def test_sip_binds_through_edb(self):
        adorned, _ = adorn_program(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        friend_rule = adorned[("buys", "bf")][0]
        idb_atoms = [
            i for i in friend_rule.body if isinstance(i, AdornedAtom)
        ]
        # friend(X, W) binds W, so the recursive call is buys^bf(W, Y).
        assert idb_atoms[0].adornment == "bf"

    def test_right_linear_keeps_binding(self):
        adorned, _ = adorn_program(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        cheaper_rule = adorned[("buys", "bf")][1]
        idb_atoms = [
            i for i in cheaper_rule.body if isinstance(i, AdornedAtom)
        ]
        # buys(X, W): X bound from the head, W free.
        assert idb_atoms[0].adornment == "bf"

    def test_new_adornments_discovered(self):
        program = parse_program(
            """
            p(X, Y) :- e(X, W) & q(Y, W).
            q(X, Y) :- f(X, Y).
            """
        ).program
        adorned, _ = adorn_program(program, parse_atom("p(c, Y)"))
        # q is called with first arg free (Y unbound), second bound (W
        # bound by e): adornment fb.
        assert ("q", "fb") in adorned

    def test_second_position_binding(self):
        adorned, qa = adorn_program(
            example_1_2_program(), parse_atom("buys(X, cup)")
        )
        assert qa == "fb"
        assert ("buys", "fb") in adorned

    def test_bound_head_terms(self):
        adorned, _ = adorn_program(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        rule = adorned[("buys", "bf")][0]
        assert [str(t) for t in rule.bound_head_terms()] == ["X"]
