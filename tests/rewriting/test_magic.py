"""Unit tests for the Generalized Magic Sets rewrite and evaluation."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.rewriting.magic import evaluate_magic, magic_rewrite
from repro.stats import EvaluationStats
from repro.workloads.generators import chain, cycle, random_graph
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_database,
    example_1_2_program,
)

from ..conftest import oracle_answers


class TestRewriteShape:
    """The rewrite reproduces the Section 4 rules for Example 1.2."""

    def test_rule_inventory(self):
        rewrite = magic_rewrite(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        texts = {str(r) for r in rewrite.program.rules}
        assert (
            "magic_buys__bf(W) :- magic_buys__bf(X) & friend(X, W)."
            in texts
        )
        assert (
            "buys__bf(X, Y) :- magic_buys__bf(X) & perfectFor(X, Y)."
            in texts
        )
        assert (
            "buys__bf(X, Y) :- magic_buys__bf(X) & friend(X, W) & "
            "buys__bf(W, Y)." in texts
        )
        assert (
            "buys__bf(X, Y) :- magic_buys__bf(X) & buys__bf(X, W) & "
            "cheaper(Y, W)." in texts
        )

    def test_seed(self):
        rewrite = magic_rewrite(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        assert str(rewrite.seed) == "magic_buys__bf(tom)"

    def test_no_trivial_self_magic_rule(self):
        rewrite = magic_rewrite(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        for r in rewrite.program.rules:
            assert str(r.head) != str(r.body[0]) or len(r.body) > 1

    def test_generated_predicates(self):
        rewrite = magic_rewrite(
            example_1_2_program(), parse_atom("buys(tom, Y)")
        )
        assert rewrite.generated_predicates == {
            "buys__bf",
            "magic_buys__bf",
        }

    def test_unknown_predicate_rejected(self):
        from repro.datalog.errors import UnknownPredicateError

        with pytest.raises(UnknownPredicateError):
            magic_rewrite(example_1_2_program(), parse_atom("nope(c, Y)"))


class TestAnswers:
    def test_example_1_1(self, example_1_1):
        program, db = example_1_1
        for q in ["buys(tom, Y)", "buys(X, camera)", "buys(tom, camera)"]:
            query = parse_atom(q)
            assert evaluate_magic(program, db, query) == oracle_answers(
                program, db, query
            )

    def test_example_1_2(self, example_1_2):
        program, db = example_1_2
        for q in ["buys(tom, Y)", "buys(X, cup)"]:
            query = parse_atom(q)
            assert evaluate_magic(program, db, query) == oracle_answers(
                program, db, query
            )

    def test_all_free_query(self, example_1_1):
        program, db = example_1_1
        query = parse_atom("buys(X, Y)")
        assert evaluate_magic(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_repeated_query_variable(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
        ).program
        db = Database.from_facts({"e": cycle(4)})
        query = parse_atom("tc(X, X)")
        assert evaluate_magic(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_cyclic_data_terminates(self):
        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": cycle(10),
                "idol": [],
                "perfectFor": [("a5", "thing")],
            }
        )
        db.ensure("idol", 2)
        query = parse_atom("buys(a0, Y)")
        assert evaluate_magic(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_random_graph_matches_oracle(self):
        program = example_1_2_program()
        db = Database.from_facts(
            {
                "friend": random_graph(10, 20, seed=1, prefix="f"),
                "cheaper": random_graph(10, 20, seed=2, prefix="c"),
                "perfectFor": [("f0", "c0"), ("f3", "c7")],
            }
        )
        query = parse_atom("buys(f0, Y)")
        assert evaluate_magic(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_multi_idb_program(self):
        program = parse_program(
            """
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- parent(X, W) & anc(W, Y).
            proud(X, Y) :- anc(X, Y) & famous(Y).
            """
        ).program
        db = Database.from_facts(
            {
                "parent": [("a", "b"), ("b", "c"), ("b", "d")],
                "famous": [("c",)],
            }
        )
        query = parse_atom("proud(a, Y)")
        assert evaluate_magic(program, db, query) == oracle_answers(
            program, db, query
        )


class TestFocusAndBlowup:
    def test_magic_focuses_on_reachable_part(self):
        """Constants restrict work to the reachable component."""
        program = example_1_1_program()
        reachable = chain(5, "a")
        unreachable = chain(100, "z")
        db = Database.from_facts(
            {
                "friend": reachable + unreachable,
                "idol": [],
                "perfectFor": [("a4", "thing"), ("z50", "other")],
            }
        )
        db.ensure("idol", 2)
        stats = EvaluationStats()
        evaluate_magic(program, db, parse_atom("buys(a0, Y)"), stats=stats)
        assert stats.relation_sizes["magic_buys__bf"] <= 5

    def test_example_1_2_quadratic_blowup(self):
        """The Section 4 analysis: buys holds the n^2 tuples (a_i, b_j)."""
        n = 10
        program = example_1_2_program()
        db = example_1_2_database(n)
        stats = EvaluationStats()
        answers = evaluate_magic(
            program, db, parse_atom("buys(a1, Y)"), stats=stats
        )
        assert stats.relation_sizes["buys__bf"] == n * n
        assert len(answers) == n  # but only n of them answer the query


class TestSupplementaryVariant:
    """style='supplementary': same answers, sup_{r,i} factoring."""

    def test_same_answers_example_1_1(self, example_1_1):
        program, db = example_1_1
        for q in ["buys(tom, Y)", "buys(X, camera)"]:
            query = parse_atom(q)
            assert evaluate_magic(
                program, db, query, style="supplementary"
            ) == oracle_answers(program, db, query)

    def test_same_answers_example_1_2(self, example_1_2):
        program, db = example_1_2
        query = parse_atom("buys(tom, Y)")
        basic = evaluate_magic(program, db, query)
        supplementary = evaluate_magic(
            program, db, query, style="supplementary"
        )
        assert basic == supplementary

    def test_sup_relations_generated(self, example_1_2):
        program, db = example_1_2
        stats = EvaluationStats()
        evaluate_magic(
            program, db, parse_atom("buys(tom, Y)"),
            stats=stats, style="supplementary",
        )
        assert any(name.startswith("sup__") for name in stats.relation_sizes)

    def test_same_asymptotic_shape_on_lemma_4_2(self):
        """Supplementary magic still materializes the n^k t0 copy --
        the Section 4 blowup is variant-independent."""
        from repro.workloads.paper import (
            lemma_4_2_database,
            lemma_4_2_program,
        )

        n, k, p = 4, 2, 2
        program = lemma_4_2_program(k, p)
        db = lemma_4_2_database(n, k, p)
        stats = EvaluationStats()
        evaluate_magic(
            program, db, parse_atom("t(c1, Q)"),
            stats=stats, style="supplementary",
        )
        assert stats.relation_sizes["t__bf"] == n**k

    def test_multi_idb_program(self):
        program = parse_program(
            """
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- parent(X, W) & anc(W, Y).
            proud(X, Y) :- anc(X, Y) & famous(Y).
            """
        ).program
        db = Database.from_facts(
            {
                "parent": [("a", "b"), ("b", "c")],
                "famous": [("c",)],
            }
        )
        query = parse_atom("proud(a, Y)")
        assert evaluate_magic(
            program, db, query, style="supplementary"
        ) == oracle_answers(program, db, query)

    def test_unknown_style_rejected(self, example_1_1):
        program, db = example_1_1
        with pytest.raises(ValueError, match="unknown magic style"):
            evaluate_magic(
                program, db, parse_atom("buys(tom, Y)"), style="quantum"
            )

    def test_cyclic_data_terminates(self):
        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": cycle(8),
                "idol": [],
                "perfectFor": [("a3", "thing")],
            }
        )
        db.ensure("idol", 2)
        query = parse_atom("buys(a0, Y)")
        assert evaluate_magic(
            program, db, query, style="supplementary"
        ) == oracle_answers(program, db, query)
