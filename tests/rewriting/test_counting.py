"""Unit tests for the Generalized Counting Method."""

import pytest

from repro.budget import Budget
from repro.datalog.database import Database
from repro.datalog.errors import BudgetExceeded, CyclicDataError
from repro.datalog.parser import parse_atom, parse_program
from repro.rewriting.counting import (
    CountingNotApplicable,
    compile_counting,
    evaluate_counting,
)
from repro.stats import EvaluationStats
from repro.workloads.generators import chain, cycle, random_dag
from repro.workloads.paper import (
    example_1_1_database,
    example_1_1_program,
    example_1_2_program,
    lemma_4_3_database,
    lemma_4_3_program,
)

from ..conftest import oracle_answers


class TestCompile:
    def test_example_1_1_all_down(self):
        plan = compile_counting(
            example_1_1_program(), parse_atom("buys(tom, Y)")
        )
        assert plan.bound_positions == (0,)
        assert all(r.up_atoms == () for r in plan.rules)
        assert all(len(r.down_atoms) == 1 for r in plan.rules)

    def test_chain_rule_with_up_part(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        plan = compile_counting(program, parse_atom("t(c, Y)"))
        rule = plan.rules[0]
        assert [a.predicate for a in rule.down_atoms] == ["a"]
        assert [a.predicate for a in rule.up_atoms] == ["b"]

    def test_combined_component_rejected(self):
        # a single atom touching both bound and free sides
        program = parse_program(
            """
            t(X, Y) :- a(X, W, Y) & t(W, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        with pytest.raises(CountingNotApplicable):
            compile_counting(program, parse_atom("t(c, Y)"))

    def test_shifting_bound_free_rejected(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(Y, W).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        with pytest.raises(CountingNotApplicable):
            compile_counting(program, parse_atom("t(c, Y)"))

    def test_unbound_query_rejected(self):
        with pytest.raises(CountingNotApplicable):
            compile_counting(
                example_1_1_program(), parse_atom("buys(X, Y)")
            )

    def test_no_exit_rule_rejected(self):
        program = parse_program(
            "t(X, Y) :- a(X, W) & t(W, Y)."
        ).program
        with pytest.raises(CountingNotApplicable):
            compile_counting(program, parse_atom("t(c, Y)"))


class TestAnswers:
    def test_example_1_1(self, example_1_1):
        program, db = example_1_1
        query = parse_atom("buys(tom, Y)")
        assert evaluate_counting(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_chain_rule_program(self):
        """The classic down+up chain rule (same-generation shape)."""
        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        db = Database.from_facts(
            {
                "a": [("c", "m"), ("m", "n")],
                "t0": [("n", "u"), ("m", "v"), ("c", "w")],
                "b": [("u", "p"), ("p", "q"), ("v", "r")],
            }
        )
        query = parse_atom("t(c, Y)")
        assert evaluate_counting(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_level_matching_is_respected(self):
        """Answers must replay exactly as many b-steps as a-steps."""
        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        # two a-steps from c; t0 at every depth; b-chain of 3.
        db = Database.from_facts(
            {
                "a": [("c", "d"), ("d", "e")],
                "t0": [("e", "u0"), ("d", "u0"), ("c", "u0")],
                "b": [("u0", "u1"), ("u1", "u2"), ("u2", "u3")],
            }
        )
        query = parse_atom("t(c, Y)")
        expected = oracle_answers(program, db, query)
        got = evaluate_counting(program, db, query)
        assert got == expected
        # depth-mismatched tuple must NOT be present
        assert ("c", "u3") not in got

    def test_multi_rule_paths(self, example_1_1):
        program = example_1_1_program()
        db = example_1_1_database(5)
        query = parse_atom("buys(a1, Y)")
        assert evaluate_counting(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_dag_data(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
        ).program
        db = Database.from_facts({"e": random_dag(10, 18, seed=5)})
        query = parse_atom("tc(a0, Y)")
        assert evaluate_counting(program, db, query) == oracle_answers(
            program, db, query
        )

    def test_bound_second_column_not_applicable(self, example_1_2):
        """Binding column 2 of Example 1.2: rule r1 passes the binding
        through unchanged, so the counting descent cannot progress --
        the method does not apply to this binding pattern."""
        program, db = example_1_2
        query = parse_atom("buys(X, cup)")
        with pytest.raises(CountingNotApplicable):
            evaluate_counting(program, db, query)


class TestFailureModes:
    def test_cyclic_data_detected(self):
        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": cycle(5),
                "idol": [],
                "perfectFor": [("a2", "thing")],
            }
        )
        db.ensure("idol", 2)
        with pytest.raises(CyclicDataError):
            evaluate_counting(program, db, parse_atom("buys(a0, Y)"))

    def test_empty_down_part_not_applicable(self):
        """Example 1.2 with the selection on column 1: rule r2's down
        part is empty (the binding passes through unchanged), so the
        descent would self-loop -- the reason the paper benchmarks
        Counting on Example 1.1 but not on 1.2."""
        program = example_1_2_program()
        db = Database.from_facts(
            {
                "friend": chain(4, "a"),
                "cheaper": chain(4, "b"),
                "perfectFor": [("a3", "b0")],
            }
        )
        with pytest.raises(CountingNotApplicable):
            evaluate_counting(program, db, parse_atom("buys(a0, Y)"))

    def test_budget_stops_exponential_blowup(self):
        program = lemma_4_3_program(2, 3)
        db = lemma_4_3_database(12, 2, 3)
        with pytest.raises(BudgetExceeded):
            evaluate_counting(
                program,
                db,
                parse_atom("t(c1, Y)"),
                stats=EvaluationStats(),
                budget=Budget(max_relation_tuples=500),
            )


class TestBlowupShapes:
    def test_count_is_2_to_the_n_on_example_1_1(self):
        """Section 4: count holds one tuple per path -- sum of 2^l."""
        n = 7
        stats = EvaluationStats()
        evaluate_counting(
            example_1_1_program(),
            example_1_1_database(n),
            parse_atom("buys(a1, Y)"),
            stats=stats,
        )
        assert stats.relation_sizes["count"] == 2**n - 1

    def test_count_is_p_to_the_n_on_lemma_4_3(self):
        n, p = 5, 3
        stats = EvaluationStats()
        evaluate_counting(
            lemma_4_3_program(2, p),
            lemma_4_3_database(n, 2, p),
            parse_atom("t(c1, Y)"),
            stats=stats,
        )
        expected = sum(p**l for l in range(n))
        assert stats.relation_sizes["count"] == expected


class TestRulesDisplay:
    def test_example_1_1_listing(self):
        from repro.rewriting.counting import counting_rules_text

        text = counting_rules_text(
            example_1_1_program(), parse_atom("buys(tom, Y)")
        )
        lines = text.splitlines()
        assert lines[0] == "count(0, 0, 0, tom)."
        assert "friend(X, W)" in lines[1] and "3*K+1" in lines[1]
        assert "idol(X, W)" in lines[2] and "3*K+2" in lines[2]

    def test_chain_rule_listing_shows_down_part_only(self):
        from repro.rewriting.counting import counting_rules_text

        program = parse_program(
            """
            t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).
            t(X, Y) :- t0(X, Y).
            """
        ).program
        text = counting_rules_text(program, parse_atom("t(c, Y)"))
        assert "a(" in text
        assert "b(" not in text  # the up part is replayed, not counted
