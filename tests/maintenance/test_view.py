"""DRed edge cases for :class:`repro.maintenance.MaintainedView`.

Every scenario here is one the overestimate/rederive split is known to
get wrong when implemented carelessly: cycles whose members support
each other, facts with several independent derivations losing only one,
and no-op writes that must leave exact counts untouched.  Each test
cross-checks the repaired view against a view rebuilt from scratch on
the mutated base -- extent *and* per-fact derivation counts.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.maintenance import MaintainedView

TC = parse_program(
    "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
).program

BUYS = parse_program(
    """
    buys(X, Y) :- friend(X, W) & buys(W, Y).
    buys(X, Y) :- idol(X, W) & buys(W, Y).
    buys(X, Y) :- perfectFor(X, Y).
    """
).program


def assert_matches_rebuild(view: MaintainedView, edb: Database) -> None:
    """Extent and exact counts equal a from-scratch view on ``edb``."""
    oracle = MaintainedView(view.program, edb, order=view.order)
    for pred in view.idb:
        got = set(view.db.tuples(pred))
        want = set(oracle.db.tuples(pred))
        assert got == want, pred
        for fact in want:
            assert view.count(pred, fact) == oracle.count(pred, fact), (
                pred, fact,
            )
        assert set(view.counts[pred]) == set(oracle.counts[pred])


def tc_edb(edges) -> Database:
    return Database.from_facts({"e": list(edges)})


class TestCycles:
    def test_breaking_a_cycle_keeps_supported_survivors(self):
        # a -> b -> c -> a: every tc pair holds.  Dropping (c, a) must
        # rederive exactly the pairs the remaining chain supports --
        # the facts DRed's overestimate sweeps away but that keep
        # outside support.
        edb = tc_edb([("a", "b"), ("b", "c"), ("c", "a")])
        view = MaintainedView(TC, edb)
        assert set(view.db.tuples("tc")) == {
            (x, y) for x in "abc" for y in "abc"
        }
        view.apply({"e": (frozenset(), frozenset([("c", "a")]))})
        edb.remove_fact("e", ("c", "a"))
        assert set(view.db.tuples("tc")) == {
            ("a", "b"), ("a", "c"), ("b", "c"),
        }
        assert_matches_rebuild(view, edb)

    def test_two_cycles_sharing_a_node(self):
        # Figure-eight: killing one loop must not take the other down.
        edb = tc_edb([
            ("a", "b"), ("b", "a"), ("a", "c"), ("c", "a"),
        ])
        view = MaintainedView(TC, edb)
        view.apply({"e": (frozenset(), frozenset([("b", "a")]))})
        edb.remove_fact("e", ("b", "a"))
        assert ("c", "a") in set(view.db.tuples("tc"))
        assert ("b", "a") not in set(view.db.tuples("tc"))
        assert_matches_rebuild(view, edb)

    def test_insert_closing_a_cycle(self):
        # The insert path's hardest case: e(c, a) makes every pair
        # derivable, including facts whose derivations never pass
        # through the directly seeded tc(c, *) heads.
        edb = tc_edb([("a", "b"), ("b", "c")])
        view = MaintainedView(TC, edb)
        view.apply({"e": (frozenset([("c", "a")]), frozenset())})
        edb.add_fact("e", ("c", "a"))
        assert set(view.db.tuples("tc")) == {
            (x, y) for x in "abc" for y in "abc"
        }
        assert_matches_rebuild(view, edb)

    def test_cycle_fed_by_external_edge_survives_feeder_loss(self):
        # x -> a with cycle a <-> b: deleting (x, a) removes only the
        # x-rooted pairs; the cycle is self-supporting.
        edb = tc_edb([("x", "a"), ("a", "b"), ("b", "a")])
        view = MaintainedView(TC, edb)
        view.apply({"e": (frozenset(), frozenset([("x", "a")]))})
        edb.remove_fact("e", ("x", "a"))
        assert set(view.db.tuples("tc")) == {
            ("a", "b"), ("b", "a"), ("a", "a"), ("b", "b"),
        }
        assert_matches_rebuild(view, edb)


class TestSupportCounting:
    def test_losing_one_of_two_supports_keeps_the_fact(self):
        edb = Database.from_facts({
            "friend": [("a", "b")],
            "idol": [("a", "b")],
            "perfectFor": [("b", "p")],
        })
        view = MaintainedView(BUYS, edb)
        assert view.count("buys", ("a", "p")) == 2
        view.apply({"friend": (frozenset(), frozenset([("a", "b")]))})
        edb.remove_fact("friend", ("a", "b"))
        assert ("a", "p") in set(view.db.tuples("buys"))
        assert view.count("buys", ("a", "p")) == 1
        assert_matches_rebuild(view, edb)

    def test_losing_the_last_support_drops_the_fact(self):
        edb = Database.from_facts({
            "friend": [("a", "b")],
            "idol": [("a", "b")],
            "perfectFor": [("b", "p")],
        })
        view = MaintainedView(BUYS, edb)
        changes = view.apply({
            "friend": (frozenset(), frozenset([("a", "b")])),
            "idol": (frozenset(), frozenset([("a", "b")])),
        })
        edb.remove_fact("friend", ("a", "b"))
        edb.remove_fact("idol", ("a", "b"))
        assert ("a", "p") not in set(view.db.tuples("buys"))
        assert view.count("buys", ("a", "p")) == 0
        assert ("a", "p") in changes["buys"][1]
        assert_matches_rebuild(view, edb)

    def test_insert_adding_a_second_derivation_bumps_the_count(self):
        edb = Database.from_facts({
            "friend": [("a", "b")],
            "perfectFor": [("b", "p")],
        })
        view = MaintainedView(BUYS, edb)
        assert view.count("buys", ("a", "p")) == 1
        # idol(a, b) adds a second derivation of an existing fact --
        # no extent change, but the count must move.
        changes = view.apply({"idol": (frozenset([("a", "b")]),
                                       frozenset())})
        edb.add_fact("idol", ("a", "b"))
        assert changes == {}  # extent unchanged; only the count moved
        assert view.count("buys", ("a", "p")) == 2
        assert_matches_rebuild(view, edb)


class TestIdempotence:
    def test_reinserting_a_present_fact_changes_nothing(self):
        edb = tc_edb([("a", "b"), ("b", "c")])
        view = MaintainedView(TC, edb)
        before = {f: view.count("tc", f) for f in view.db.tuples("tc")}
        changes = view.apply({"e": (frozenset([("a", "b")]),
                                    frozenset())})
        assert changes == {}
        assert {
            f: view.count("tc", f) for f in view.db.tuples("tc")
        } == before

    def test_deleting_an_absent_fact_changes_nothing(self):
        edb = tc_edb([("a", "b")])
        view = MaintainedView(TC, edb)
        changes = view.apply({"e": (frozenset(),
                                    frozenset([("z", "z")]))})
        assert changes == {}
        assert set(view.db.tuples("tc")) == {("a", "b")}

    def test_delete_then_reinsert_restores_counts_exactly(self):
        edb = tc_edb([("a", "b"), ("b", "c"), ("c", "a")])
        view = MaintainedView(TC, edb)
        before = {f: view.count("tc", f) for f in view.db.tuples("tc")}
        view.apply({"e": (frozenset(), frozenset([("b", "c")]))})
        view.apply({"e": (frozenset([("b", "c")]), frozenset())})
        assert {
            f: view.count("tc", f) for f in view.db.tuples("tc")
        } == before
        assert_matches_rebuild(view, edb)

    def test_cancelling_batch_is_a_noop(self):
        edb = tc_edb([("a", "b")])
        view = MaintainedView(TC, edb)
        changes = view.apply({
            "e": (frozenset([("a", "b")]), frozenset([("z", "z")])),
        })
        assert changes == {}


class TestApplyContract:
    def test_idb_delta_is_rejected(self):
        view = MaintainedView(TC, tc_edb([("a", "b")]))
        with pytest.raises(ValueError, match="derived predicate"):
            view.apply({"tc": (frozenset([("x", "y")]), frozenset())})

    def test_net_idb_changes_are_reported(self):
        edb = tc_edb([("a", "b")])
        view = MaintainedView(TC, edb)
        changes = view.apply({"e": (frozenset([("b", "c")]),
                                    frozenset())})
        assert changes == {
            "tc": (frozenset([("b", "c"), ("a", "c")]), frozenset()),
        }

    def test_new_base_relation_via_insert(self):
        # Inserting into a relation the database has never seen.
        edb = Database.from_facts({
            "friend": [("a", "b")], "idol": [],
            "perfectFor": [("b", "p")],
        })
        view = MaintainedView(BUYS, edb)
        view.apply({"cheaper_stub": (frozenset([("q", "p")]),
                                     frozenset())})
        edb.add_fact("cheaper_stub", ("q", "p"))
        assert_matches_rebuild(view, edb)

    def test_mixed_batch_matches_rebuild(self):
        edb = Database.from_facts({
            "friend": [("a", "b"), ("b", "c")],
            "idol": [("a", "c")],
            "perfectFor": [("c", "p")],
        })
        view = MaintainedView(BUYS, edb)
        view.apply({
            "friend": (frozenset([("c", "d")]),
                       frozenset([("a", "b")])),
            "perfectFor": (frozenset([("d", "q")]), frozenset()),
        })
        edb.add_fact("friend", ("c", "d"))
        edb.remove_fact("friend", ("a", "b"))
        edb.add_fact("perfectFor", ("d", "q"))
        assert_matches_rebuild(view, edb)
