"""Unit tests for :class:`repro.maintenance.DeltaCapture`.

The capture's one job is to produce net deltas whose replay from the
pre-capture state reproduces the post-capture state -- so cancellation,
overflow and subscription lifetime are each pinned here.
"""

from repro.datalog.database import Database, Relation
from repro.maintenance import DeltaCapture


def small_db() -> Database:
    return Database.from_facts({"e": [("a", "b"), ("b", "c")]})


class TestNetDeltas:
    def test_plain_insert_and_delete(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.add_fact("e", ("c", "d"))
            db.remove_fact("e", ("a", "b"))
        assert cap.net() == {
            "e": (frozenset([("c", "d")]), frozenset([("a", "b")])),
        }
        assert cap.touched and not cap.overflow

    def test_insert_then_delete_cancels(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.add_fact("e", ("c", "d"))
            db.remove_fact("e", ("c", "d"))
        assert cap.net() == {}
        assert not cap.touched

    def test_delete_then_reinsert_cancels(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.remove_fact("e", ("a", "b"))
            db.add_fact("e", ("a", "b"))
        assert cap.net() == {}

    def test_noop_writes_emit_nothing(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.add_fact("e", ("a", "b"))       # already present
            db.remove_fact("e", ("z", "z"))    # never present
        assert cap.net() == {}

    def test_new_relation_is_captured(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.add_fact("f", ("x",))
        assert cap.net() == {"f": (frozenset([("x",)]), frozenset())}

    def test_replaying_net_reproduces_the_state(self):
        db = small_db()
        before = db.copy()
        with DeltaCapture(db) as cap:
            db.add_fact("e", ("c", "d"))
            db.add_fact("e", ("d", "e"))
            db.remove_fact("e", ("d", "e"))
            db.remove_fact("e", ("b", "c"))
            db.add_fact("f", ("x",))
        for name, (ins, dels) in cap.net().items():
            for fact in dels:
                before.remove_fact(name, fact)
            for fact in ins:
                before.add_fact(name, fact)
        assert {
            name: set(before.tuples(name))
            for name in before.predicates()
        } == {name: set(db.tuples(name)) for name in db.predicates()}


class TestOverflow:
    def test_clear_overflows(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.relation("e").clear()
        assert cap.overflow and cap.touched

    def test_attach_overflows(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.attach(Relation("g", 1, [("x",)]), "g")
        assert cap.overflow

    def test_guarded_write_overflows(self):
        db = small_db()
        with DeltaCapture(db, guard_predicates=["tc"]) as cap:
            db.add_fact("tc", ("a", "b"))
        assert cap.overflow

    def test_unguarded_write_next_to_guard_does_not(self):
        db = small_db()
        with DeltaCapture(db, guard_predicates=["tc"]) as cap:
            db.add_fact("e", ("c", "d"))
        assert not cap.overflow


class TestAliasMounts:
    """Deltas are keyed on the *mount* name.

    A relation alias-mounted before capture started used to record its
    deltas under ``relation.name`` -- a predicate the maintenance layer
    never repairs -- so replaying the net deltas silently diverged.
    """

    def test_pre_capture_alias_keys_on_mount_name(self):
        db = small_db()
        db.attach(Relation("edges", 2, [("a", "b")]), "alias")
        with DeltaCapture(db) as cap:
            db.add_fact("alias", ("x", "y"))
        assert cap.net() == {
            "alias": (frozenset([("x", "y")]), frozenset()),
        }
        assert not cap.overflow

    def test_multi_mounted_relation_overflows(self):
        # One event would have to stand for a delta under each mount
        # name; the net-delta protocol cannot express that, so the
        # capture must fall back to a rebuild instead of guessing.
        db = small_db()
        db.attach(db.relation("e"), "e_view")
        with DeltaCapture(db) as cap:
            db.add_fact("e", ("c", "d"))
        assert cap.overflow

    def test_guard_matches_the_mount_name(self):
        # The guard names predicates as the service sees them (mount
        # names); a relation whose own name differs must still trip it.
        db = small_db()
        db.attach(Relation("inner", 2), "tc")
        with DeltaCapture(db, guard_predicates=["tc"]) as cap:
            db.add_fact("tc", ("a", "b"))
        assert cap.overflow

    def test_relation_created_mid_capture_is_keyed(self):
        db = small_db()
        with DeltaCapture(db) as cap:
            db.add_fact("fresh", ("x",))
            db.add_fact("fresh", ("y",))
        assert cap.net() == {
            "fresh": (frozenset([("x",), ("y",)]), frozenset()),
        }
        assert not cap.overflow


class TestAttachDisplacement:
    """Replacing a mount must release the displaced relation's
    subscription -- otherwise a detached capture keeps receiving (and
    a long-lived service keeps leaking) its events."""

    def test_displaced_relation_is_unsubscribed(self):
        db = small_db()
        displaced = db.relation("e")
        cap = DeltaCapture(db)
        db.attach(Relation("e2", 2, [("p", "q")]), "e")
        assert displaced._observers == ()
        cap.detach()

    def test_detached_capture_receives_no_displaced_events(self):
        db = small_db()
        displaced = db.relation("e")
        cap = DeltaCapture(db)
        db.attach(Relation("e2", 2, [("p", "q")]), "e")
        cap.detach()
        cap.overflow = False  # the attach itself legitimately overflowed
        displaced.add(("stale", "event"))
        assert not cap.overflow
        assert cap.net() == {}

    def test_still_mounted_alias_keeps_its_subscription(self):
        # The displaced relation survives under another mount: the
        # subscription must stay, and unobserve-on-detach still finds
        # it through that mount.
        db = small_db()
        shared = db.relation("e")
        db.attach(shared, "e_view")
        cap = DeltaCapture(db)
        db.attach(Relation("e2", 2), "e")    # displaces one of two mounts
        assert len(shared._observers) == 1
        cap.detach()
        assert shared._observers == ()

    def test_remounting_the_same_relation_keeps_subscription(self):
        db = small_db()
        rel = db.relation("e")
        cap = DeltaCapture(db)
        db.attach(rel, "e")                  # self-replacement
        assert len(rel._observers) == 1
        cap.detach()
        assert rel._observers == ()


class TestLifetime:
    def test_detach_stops_capturing(self):
        db = small_db()
        cap = DeltaCapture(db)
        db.add_fact("e", ("c", "d"))
        cap.detach()
        db.add_fact("e", ("d", "e"))
        assert cap.net() == {"e": (frozenset([("c", "d")]), frozenset())}

    def test_two_captures_observe_independently(self):
        db = small_db()
        first = DeltaCapture(db)
        second = DeltaCapture(db)
        db.add_fact("e", ("c", "d"))
        first.detach()
        db.add_fact("e", ("d", "e"))
        second.detach()
        assert first.net()["e"][0] == frozenset([("c", "d")])
        assert second.net()["e"][0] == frozenset([
            ("c", "d"), ("d", "e"),
        ])
