"""Delta-seeded restart of the semi-naive fixpoint.

``seminaive_stratum(..., initial_deltas=...)`` is the insertion half of
incremental maintenance: the database is already a fixpoint except for
the seed facts, and round zero installs the seeds instead of evaluating
every rule from scratch.  These tests pin that a restart lands on the
same fixpoint as a full evaluation, and the contract errors.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_evaluate, seminaive_stratum

TC = parse_program(
    "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
).program


def _stratum_args(program):
    [scc] = program.evaluation_order
    rules = [r for r in program.rules if r.head.predicate in scc]
    return rules, scc


class TestRestart:
    def test_restart_reaches_the_full_fixpoint(self):
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        db = seminaive_evaluate(TC, edb)
        # New edge c -> d: the restart is seeded with the one new
        # direct pair and must propagate a->d and b->d on its own.
        db.add_fact("e", ("c", "d"))
        rules, scc = _stratum_args(TC)
        seminaive_stratum(rules, scc, db, TC,
                          initial_deltas={"tc": [("c", "d")]})
        edb.add_fact("e", ("c", "d"))
        oracle = seminaive_evaluate(TC, edb)
        assert set(db.tuples("tc")) == set(oracle.tuples("tc"))

    def test_restart_on_a_cycle(self):
        # Closing the loop with e(c, a): the restart precondition is
        # that the seeds cover every *direct* consequence of the
        # changed base facts -- the delta-join heads e(c, a) joined
        # with the old tc, i.e. (c, a), (c, b), (c, c) -- exactly what
        # MaintainedView computes.  The fixpoint rounds then owe only
        # the transitive consequences.
        edb = Database.from_facts({"e": [("a", "b"), ("b", "c")]})
        db = seminaive_evaluate(TC, edb)
        db.add_fact("e", ("c", "a"))
        rules, scc = _stratum_args(TC)
        seeds = [("c", "a"), ("c", "b"), ("c", "c")]
        seminaive_stratum(rules, scc, db, TC,
                          initial_deltas={"tc": seeds})
        edb.add_fact("e", ("c", "a"))
        oracle = seminaive_evaluate(TC, edb)
        assert set(db.tuples("tc")) == set(oracle.tuples("tc"))

    def test_empty_seeds_do_nothing(self):
        edb = Database.from_facts({"e": [("a", "b")]})
        db = seminaive_evaluate(TC, edb)
        version_before = db.relation("tc")._version
        rules, scc = _stratum_args(TC)
        seminaive_stratum(rules, scc, db, TC, initial_deltas={"tc": []})
        assert set(db.tuples("tc")) == {("a", "b")}
        assert db.relation("tc")._version == version_before

    def test_seed_for_foreign_predicate_is_rejected(self):
        edb = Database.from_facts({"e": [("a", "b")]})
        db = seminaive_evaluate(TC, edb)
        rules, scc = _stratum_args(TC)
        with pytest.raises(ValueError, match="not a member"):
            seminaive_stratum(rules, scc, db, TC,
                              initial_deltas={"e": [("x", "y")]})
