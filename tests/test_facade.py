"""Cross-cutting facade tests: package exports, result objects, and the
odd corners of the public API surface."""

import pytest

import repro
from repro import Engine, parse_program
from repro.workloads.paper import example_1_1_program


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_exports_resolve(self):
        import repro.core

        for name in repro.core.__all__:
            assert hasattr(repro.core, name), name

    def test_datalog_exports_resolve(self):
        import repro.datalog

        for name in repro.datalog.__all__:
            assert hasattr(repro.datalog, name), name

    def test_rewriting_exports_resolve(self):
        import repro.rewriting

        for name in repro.rewriting.__all__:
            assert hasattr(repro.rewriting, name), name

    def test_workloads_exports_resolve(self):
        import repro.workloads

        for name in repro.workloads.__all__:
            assert hasattr(repro.workloads, name), name


class TestQueryResultSurface:
    @pytest.fixture
    def engine(self, example_1_1):
        program, db = example_1_1
        return Engine(program, db)

    def test_plan_attached_for_separable(self, engine):
        result = engine.query("buys(tom, Y)?")
        assert result.plan is not None
        assert "down loop" in result.describe_plan()

    def test_plan_absent_for_magic(self, engine):
        result = engine.query("buys(tom, Y)?", strategy="magic")
        assert result.plan is None
        assert "no compiled Separable plan" in result.describe_plan()

    def test_plan_cache_shared_across_queries(self, engine):
        first = engine.query("buys(tom, Y)?")
        second = engine.query("buys(sue, Y)?")
        assert first.plan is second.plan
        different_pattern = engine.query("buys(X, camera)?")
        assert different_pattern.plan is not first.plan

    def test_stats_passed_through(self, engine):
        from repro.stats import EvaluationStats

        stats = EvaluationStats()
        result = engine.query("buys(tom, Y)?", stats=stats)
        assert result.stats is stats
        assert stats.strategy == "separable"

    def test_readme_quickstart_verbatim(self):
        """The README's quickstart block must actually work."""
        parsed = parse_program(
            """
            buys(X, Y) :- friend(X, W) & buys(W, Y).
            buys(X, Y) :- idol(X, W) & buys(W, Y).
            buys(X, Y) :- perfectFor(X, Y).

            friend(tom, sue).   friend(sue, ann).
            idol(tom, ann).     perfectFor(ann, camera).
            """
        )
        engine = Engine(parsed.program, parsed.database)
        result = engine.query("buys(tom, Y)?")
        assert result.sorted() == [("tom", "camera")]
        assert result.strategy == "separable"

    def test_readme_explain_verbatim(self):
        from repro import parse_atom
        from repro.core import explain

        parsed = parse_program(
            """
            buys(X, Y) :- friend(X, W) & buys(W, Y).
            buys(X, Y) :- idol(X, W) & buys(W, Y).
            buys(X, Y) :- perfectFor(X, Y).

            friend(tom, sue).   friend(sue, ann).
            idol(tom, ann).     perfectFor(ann, camera).
            """
        )
        explained = explain(
            parsed.program, parsed.database, parse_atom("buys(tom, Y)")
        )
        assert ("tom", "camera") in explained
        rendered = str(explained[("tom", "camera")])
        assert rendered.startswith("J(")


class TestEngineMiscellany:
    def test_engine_accepts_empty_edb(self):
        from repro.datalog.database import Database

        engine = Engine(example_1_1_program(), Database())
        assert engine.query("buys(tom, Y)?").answers == frozenset()

    def test_relaxed_plan_attached(self):
        from repro.datalog.database import Database
        from repro.workloads.paper import section_5_nonseparable_program

        db = Database.from_facts(
            {"a": [("c", "m")], "t0": [("m", "u")], "b": [("u", "v")]}
        )
        engine = Engine(section_5_nonseparable_program(), db)
        result = engine.query("t(c, v)?", strategy="relaxed")
        assert result.plan is not None  # full selection: both cols bound

    def test_separate_engines_do_not_share_caches(self, example_1_1):
        program, db = example_1_1
        first = Engine(program, db)
        second = Engine(program, db)
        first.query("buys(tom, Y)?")
        assert not second._plans
