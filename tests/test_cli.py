"""Tests for the command-line interface."""

import pytest

from repro.cli import main

EX12 = """
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
friend(tom, sue).
cheaper(cup, tent).
perfectFor(sue, tent).
buys(tom, Y)?
"""

NONSEP = """
t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).
t(X, Y) :- t0(X, Y).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "ex12.dl"
    path.write_text(EX12)
    return path


class TestRun:
    def test_inline_query(self, program_file, capsys):
        assert main(["run", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "buys(tom, tent)." in out
        assert "buys(tom, cup)." in out
        assert "strategy: separable" in out

    def test_explicit_query_and_strategy(self, program_file, capsys):
        code = main(
            [
                "run",
                str(program_file),
                "--query",
                "buys(sue, Y)?",
                "--strategy",
                "magic",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy: magic" in out
        assert "buys(sue, tent)." in out

    def test_stats_flag(self, program_file, capsys):
        main(["run", str(program_file), "--stats"])
        out = capsys.readouterr().out
        assert "seen_1" in out

    def test_order_flag_preserves_answers(self, program_file, capsys):
        code = main(
            ["run", str(program_file), "--strategy", "seminaive",
             "--order", "cost"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "buys(tom, tent)." in out
        assert "buys(tom, cup)." in out

    def test_rejects_unknown_order(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", str(program_file), "--order", "bogus"])

    def test_no_queries(self, tmp_path, capsys):
        path = tmp_path / "noq.dl"
        path.write_text("p(a).")
        assert main(["run", str(path)]) == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", str(tmp_path / "missing.dl")])


class TestDetect:
    def test_separable_report(self, program_file, capsys):
        assert main(["detect", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "separable" in out
        assert "e_1" in out and "e_2" in out

    def test_nonseparable_nonzero_exit(self, tmp_path, capsys):
        path = tmp_path / "nonsep.dl"
        path.write_text(NONSEP)
        assert main(["detect", str(path)]) == 1
        out = capsys.readouterr().out
        assert "NOT separable" in out

    def test_specific_predicate(self, program_file, capsys):
        assert main(["detect", str(program_file), "--predicate", "buys"]) == 0

    def test_unknown_predicate(self, program_file, capsys):
        assert main(["detect", str(program_file), "--predicate", "zz"]) == 1


class TestPlan:
    def test_full_selection_plan(self, program_file, capsys):
        code = main(["plan", str(program_file), "--query", "buys(tom, Y)?"])
        assert code == 0
        out = capsys.readouterr().out
        assert "down loop" in out and "friend" in out

    def test_partial_selection_plan(self, tmp_path, capsys):
        path = tmp_path / "ex24.dl"
        path.write_text(
            """
            t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
            t(X, Y, Z) :- t(X, Y, W) & b(W, Z).
            t(X, Y, Z) :- t0(X, Y, Z).
            """
        )
        code = main(["plan", str(path), "--query", "t(c, Y, Z)?"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Lemma 2.1" in out
        assert "t_full" in out and "t_part" in out

    def test_nonseparable_errors(self, tmp_path, capsys):
        path = tmp_path / "nonsep.dl"
        path.write_text(NONSEP)
        assert main(["plan", str(path), "--query", "t(c, Y)?"]) == 2
        assert "error" in capsys.readouterr().err


class TestAdvise:
    def test_separable_query(self, program_file, capsys):
        code = main(
            ["advise", str(program_file), "--query", "buys(tom, Y)?"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended: separable" in out
        assert "expansion:" in out

    def test_nonseparable_program(self, tmp_path, capsys):
        path = tmp_path / "nonsep.dl"
        path.write_text(NONSEP)
        code = main(["advise", str(path), "--query", "t(c, Y)?"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended: magic" in out
        assert "+ relaxed" in out


class TestProfile:
    def test_text_report_default_query(self, program_file, capsys):
        assert main(["profile", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE  buys(tom, Y)?")
        assert "-- plan --" in out
        assert "-- per-rule work --" in out
        assert "wall-clock" in out

    def test_no_timings_is_deterministic(self, program_file, capsys):
        assert main(["profile", str(program_file), "--no-timings"]) == 0
        first = capsys.readouterr().out
        assert main(["profile", str(program_file), "--no-timings"]) == 0
        assert capsys.readouterr().out == first
        assert "ms" not in first

    def test_explicit_query_and_strategy(self, program_file, capsys):
        code = main(
            ["profile", str(program_file), "buys(sue, Y)?",
             "--strategy", "magic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "buys(sue, Y)?" in out
        assert "strategy: magic" in out

    def test_cost_order_adds_planner_section(self, program_file, capsys):
        code = main(
            ["profile", str(program_file), "--strategy", "seminaive",
             "--order", "cost", "--no-timings"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- planner (estimate vs observed)" in out
        assert "advice:" in out

    def test_chrome_trace_format(self, program_file, tmp_path, capsys):
        import json

        out_file = tmp_path / "t.trace.json"
        code = main(
            ["profile", str(program_file), "--format", "chrome-trace",
             "--out", str(out_file)]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        events = data["traceEvents"]
        assert events
        depth = 0
        for event in events:
            if event["ph"] == "B":
                depth += 1
            elif event["ph"] == "E":
                depth -= 1
                assert depth >= 0
        assert depth == 0

    def test_json_format(self, program_file, capsys):
        import json

        assert main(["profile", str(program_file), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["strategy"] == "separable"
        assert data["answers"] == 2

    def test_events_file_replays(self, program_file, tmp_path, capsys):
        from repro.observability import replay_file

        events = tmp_path / "t.jsonl"
        code = main(
            ["profile", str(program_file), "--events", str(events)]
        )
        assert code == 0
        replayed = replay_file(events)
        assert any(s.name == "separable.loop" for s in replayed.spans())

    def test_ambiguous_file_queries_error(self, tmp_path, capsys):
        path = tmp_path / "two.dl"
        path.write_text(EX12 + "buys(sue, Y)?\n")
        assert main(["profile", str(path)]) == 2
        assert "2 queries" in capsys.readouterr().err


class TestFuzz:
    def test_small_campaign_agrees(self, capsys):
        assert main(["fuzz", "--iterations", "5", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "all strategies agree" in out
        assert "iterations=5" in out

    def test_strategy_subset(self, capsys):
        code = main(
            [
                "fuzz", "--iterations", "3", "--seed", "1",
                "--strategy", "seminaive", "--strategy", "magic",
            ]
        )
        assert code == 0

    def test_corpus_replayed(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "tc.dl").write_text(
            "% differential-repro v1\n"
            "% expect-separable: true\n"
            "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
            "tc(X, Y) :- edge(X, Y).\n"
            "edge(a, b).\n"
            "edge(b, c).\n"
            "tc(a, Y)?\n"
        )
        code = main(
            ["fuzz", "--iterations", "2", "--seed", "3",
             "--corpus", str(corpus)]
        )
        assert code == 0
        assert "corpus replayed=1" in capsys.readouterr().out

    def test_rejects_unknown_strategy(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--strategy", "quantum"])

    def test_order_sweep(self, capsys):
        code = main(
            ["fuzz", "--iterations", "3", "--seed", "5",
             "--strategy", "seminaive", "--orders", "cost,adaptive"]
        )
        assert code == 0
        assert "all strategies agree" in capsys.readouterr().out

    def test_rejects_unknown_order(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--orders", "alphabetical"])


class TestServe:
    def test_batch_serve_summary(self, program_file, capsys):
        assert main(["serve", str(program_file), "--workers", "2",
                     "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        assert "served 3 requests on 2 workers" in out
        assert "statuses: ok=3" in out
        assert "memo:" in out and "hits" in out

    def test_explicit_queries_and_stats(self, program_file, capsys):
        assert main([
            "serve", str(program_file),
            "--query", "buys(tom, Y)?",
            "--query", "buys(sue, Y)?",
            "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "buys(tom, Y)  status=ok" in out
        assert "buys(sue, Y)  status=ok" in out

    def test_metrics_out_prometheus_text(self, program_file, tmp_path,
                                         capsys):
        metrics = tmp_path / "metrics.prom"
        assert main(["serve", str(program_file), "--repeat", "4",
                     "--metrics-out", str(metrics)]) == 0
        text = metrics.read_text()
        assert 'repro_service_requests_total{status="ok"} 4' in text
        assert "repro_service_latency_seconds_count 4" in text
        assert 'wrote' in capsys.readouterr().out

    def test_metrics_out_json(self, program_file, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(["serve", str(program_file),
                     "--metrics-out", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        assert snap["by_status"] == {"ok": 1}
        assert snap["memo"]["misses"] >= 1
        capsys.readouterr()

    def test_events_file_replays(self, program_file, tmp_path, capsys):
        from repro.observability import read_events

        events_path = tmp_path / "service.jsonl"
        assert main(["serve", str(program_file), "--repeat", "2",
                     "--events", str(events_path)]) == 0
        events = read_events(events_path)
        assert events[0]["type"] == "trace_start"
        assert [e["type"] for e in events].count("service_request") == 2
        capsys.readouterr()

    def test_deadline_trips_divergent_requests(self, tmp_path, capsys):
        # Counting on the Example 1.1 chain wants Omega(2^n) count
        # tuples: with a tight deadline the request degrades instead of
        # hanging the driver.
        from repro.workloads.paper import example_1_1_database

        path = tmp_path / "deep.dl"
        lines = [
            "buys(X, Y) :- friend(X, W) & buys(W, Y).",
            "buys(X, Y) :- idol(X, W) & buys(W, Y).",
            "buys(X, Y) :- perfectFor(X, Y).",
        ]
        db = example_1_1_database(24)
        for name in ("friend", "idol", "perfectFor"):
            for fact in sorted(db.tuples(name)):
                args = ", ".join(fact)
                lines.append(f"{name}({args}).")
        path.write_text("\n".join(lines) + "\n")
        code = main([
            "serve", str(path),
            "--query", "buys(a1, Y)?",
            "--strategy", "counting",
            "--deadline", "0.2",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "deadline_trips=" in out
        assert "error=1" in out

    def test_no_queries(self, tmp_path, capsys):
        path = tmp_path / "empty.dl"
        path.write_text("p(X, Y) :- e(X, Y).\ne(a, b).\n")
        assert main(["serve", str(path)]) == 1
        assert "no queries" in capsys.readouterr().out
