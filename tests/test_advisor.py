"""Tests for Engine.advise: static strategy applicability with reasons."""

import pytest

from repro.datalog.database import Database
from repro.datalog.errors import UnknownPredicateError
from repro.engine import Engine
from repro.workloads.paper import (
    example_1_1_program,
    example_1_2_program,
    example_2_4_program,
    section_5_nonseparable_program,
)


def advice_for(program, query):
    return Engine(program, Database()).advise(query)


class TestSeparableQueries:
    def test_full_selection(self):
        advice = advice_for(example_1_1_program(), "buys(tom, Y)?")
        assert advice.recommended == "separable"
        assert "separable" in advice.applicable
        assert "full selection" in advice.notes["separable"]

    def test_partial_selection_notes_lemma(self):
        advice = advice_for(example_2_4_program(), "t(c, Y, Z)?")
        assert "separable" in advice.applicable
        assert "Lemma 2.1" in advice.notes["separable"]

    def test_pers_selection_enables_pushdown(self):
        advice = advice_for(example_1_1_program(), "buys(X, camera)?")
        assert "pushdown" in advice.applicable
        assert "[AU79]" in advice.notes["pushdown"]

    def test_class_selection_disables_pushdown(self):
        advice = advice_for(example_1_2_program(), "buys(tom, Y)?")
        assert "pushdown" not in advice.applicable

    def test_counting_applicability(self):
        advice = advice_for(example_1_1_program(), "buys(tom, Y)?")
        assert "counting" in advice.applicable
        advice = advice_for(example_1_2_program(), "buys(tom, Y)?")
        assert "counting" not in advice.applicable
        assert "descent" in advice.notes["counting"]

    def test_unbounded_query(self):
        advice = advice_for(example_1_1_program(), "buys(X, Y)?")
        assert advice.recommended == "magic"
        assert "separable" not in advice.applicable


class TestNonSeparableQueries:
    def test_section_5_recursion(self):
        advice = advice_for(section_5_nonseparable_program(), "t(c, Y)?")
        assert advice.recommended == "magic"
        assert "separable" not in advice.applicable
        assert "condition(s) 4" in advice.notes["separable"]
        assert "relaxed" in advice.applicable
        assert "Section 5" in advice.notes["relaxed"]
        # counting DOES apply here: a is the down part, b the up part.
        assert "counting" in advice.applicable

    def test_always_applicable_fallbacks(self):
        advice = advice_for(section_5_nonseparable_program(), "t(c, Y)?")
        for name in ("magic", "seminaive", "naive"):
            assert name in advice.applicable


class TestInterface:
    def test_explain_renders_all_strategies(self):
        advice = advice_for(example_1_1_program(), "buys(tom, Y)?")
        text = advice.explain()
        for name in ("separable", "magic", "counting", "pushdown"):
            assert name in text
        assert "recommended: separable" in text

    def test_unknown_predicate(self):
        with pytest.raises(UnknownPredicateError):
            advice_for(example_1_1_program(), "ghost(tom, Y)?")

    def test_recommendation_matches_auto(self, example_1_1):
        program, db = example_1_1
        engine = Engine(program, db)
        for query in ("buys(tom, Y)?", "buys(X, Y)?", "buys(X, camera)?"):
            assert (
                engine.advise(query).recommended
                == engine.query(query).strategy
            )
