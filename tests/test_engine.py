"""Tests for the top-level Engine: strategy dispatch, auto-selection,
base-predicate materialization, cross-strategy agreement."""

import pytest

from repro.budget import Budget
from repro.datalog.database import Database
from repro.datalog.errors import (
    BudgetExceeded,
    NotFullSelectionError,
    NotSeparableError,
    UnknownPredicateError,
)
from repro.datalog.parser import parse_program
from repro.engine import STRATEGIES, Engine
from repro.workloads.generators import chain, cycle
from repro.workloads.paper import section_5_nonseparable_program

from .conftest import oracle_answers


@pytest.fixture
def ex11_engine(example_1_1):
    program, db = example_1_1
    return Engine(program, db), program, db


class TestAutoSelection:
    def test_separable_query_uses_separable(self, ex11_engine):
        engine, _, _ = ex11_engine
        result = engine.query("buys(tom, Y)?")
        assert result.strategy == "separable"
        assert result.report is not None and result.report.separable

    def test_all_free_query_falls_back_to_magic(self, ex11_engine):
        engine, _, _ = ex11_engine
        result = engine.query("buys(X, Y)?")
        assert result.strategy == "magic"

    def test_nonseparable_falls_back_to_magic(self):
        program = section_5_nonseparable_program()
        db = Database.from_facts(
            {
                "a": [("c", "m")],
                "b": [("u", "v")],
                "t0": [("m", "u")],
            }
        )
        engine = Engine(program, db)
        result = engine.query("t(c, Y)?")
        assert result.strategy == "magic"
        assert result.answers == {("c", "v")}
        assert not result.report.separable


class TestJoinOrderSelection:
    def test_constructor_rejects_unknown_order(self, example_1_1):
        program, db = example_1_1
        with pytest.raises(ValueError, match="unknown join order"):
            Engine(program, db, order="bogus")

    def test_query_rejects_unknown_order(self, ex11_engine):
        engine, _, _ = ex11_engine
        with pytest.raises(ValueError, match="unknown join order"):
            engine.query("buys(tom, Y)?", order="bogus")

    @pytest.mark.parametrize("order", ["left_to_right", "cost", "adaptive"])
    def test_engine_order_preserves_answers(self, example_1_1, order):
        program, db = example_1_1
        reference = Engine(program, db).query(
            "buys(tom, Y)?", strategy="seminaive"
        ).answers
        got = Engine(program, db, order=order).query(
            "buys(tom, Y)?", strategy="seminaive"
        ).answers
        assert got == reference

    def test_per_query_order_overrides_engine_default(self, ex11_engine):
        engine, _, _ = ex11_engine
        from repro.datalog.plan_cache import PLAN_CACHE

        PLAN_CACHE.clear()
        default = engine.query("buys(tom, Y)?", strategy="seminaive")
        overridden = engine.query(
            "buys(tom, Y)?", strategy="seminaive", order="cost"
        )
        assert overridden.answers == default.answers
        assert PLAN_CACHE.stats()["orders"].get("cost", 0) > 0

    def test_join_plan_stats_reports_order_mix(self, ex11_engine):
        engine, _, _ = ex11_engine
        from repro.datalog.plan_cache import PLAN_CACHE

        PLAN_CACHE.clear()
        engine.query("buys(tom, Y)?", strategy="seminaive")
        stats = engine.join_plan_stats()
        assert set(stats) >= {
            "size", "hits", "misses", "compiles", "evictions", "orders",
        }
        assert stats["orders"].get("greedy", 0) > 0


class TestAllStrategiesAgree:
    @pytest.mark.parametrize(
        "strategy", [s for s in STRATEGIES if s != "auto"]
    )
    @pytest.mark.parametrize(
        "query", ["buys(tom, Y)?", "buys(X, camera)?"]
    )
    def test_example_1_1(self, ex11_engine, strategy, query):
        from repro.rewriting.counting import CountingNotApplicable
        from repro.rewriting.selection_push import StablePushNotApplicable

        engine, program, db = ex11_engine
        try:
            result = engine.query(query, strategy=strategy)
        except (CountingNotApplicable, StablePushNotApplicable) as exc:
            pytest.skip(f"{strategy} not applicable: {exc}")
        from repro.datalog.parser import parse_query

        assert result.answers == oracle_answers(
            program, db, parse_query(query)
        )
        assert result.strategy == strategy

    @pytest.mark.parametrize("strategy", ["separable", "magic", "seminaive"])
    def test_cyclic_data(self, example_1_1, strategy):
        program, db = example_1_1
        db = db.copy()
        db.add_fact("friend", ("joe", "tom"))
        engine = Engine(program, db)
        from repro.datalog.parser import parse_query

        query = parse_query("buys(tom, Y)?")
        assert engine.query(query, strategy=strategy).answers == (
            oracle_answers(program, db, query)
        )


class TestBaseMaterialization:
    PROGRAM = """
    link(X, Y) :- wire(X, Y).
    link(X, Y) :- wire(Y, X).
    conn(X, Y) :- link(X, W) & conn(W, Y).
    conn(X, Y) :- link(X, Y).
    """

    def test_idb_base_predicates_materialized(self):
        parsed = parse_program(self.PROGRAM)
        db = Database.from_facts({"wire": [("a", "b"), ("c", "b")]})
        engine = Engine(parsed.program, db)
        result = engine.query("conn(a, Y)?", strategy="separable")
        assert result.answers == {("a", "b"), ("a", "c"), ("a", "a")}

    def test_materialization_cached(self):
        parsed = parse_program(self.PROGRAM)
        db = Database.from_facts({"wire": [("a", "b")]})
        engine = Engine(parsed.program, db)
        engine.query("conn(a, Y)?", strategy="separable")
        first = engine._base_db["conn"]
        engine.query("conn(b, Y)?", strategy="separable")
        assert engine._base_db["conn"] is first

    def test_report_cached(self, ex11_engine):
        engine, _, _ = ex11_engine
        assert engine.report("buys") is engine.report("buys")

    def test_cache_invalidated_on_edb_mutation(self):
        """Regression: the base-IDB cache used to survive EDB updates,
        so answers computed after an ``add_fact`` reflected the stale
        materialization."""
        parsed = parse_program(self.PROGRAM)
        db = Database.from_facts({"wire": [("a", "b")]})
        engine = Engine(parsed.program, db)
        before = engine.query("conn(a, Y)?", strategy="separable").answers
        assert ("a", "c") not in before
        db.add_fact("wire", ("b", "c"))
        after = engine.query("conn(a, Y)?", strategy="separable").answers
        assert ("a", "c") in after

    def test_cache_invalidated_for_every_strategy(self):
        parsed = parse_program(self.PROGRAM)
        db = Database.from_facts({"wire": [("a", "b")]})
        # counting is excluded: the symmetric link rules make the data
        # cyclic, which that method rejects by design.
        for strategy in ("magic", "seminaive", "naive"):
            engine = Engine(parsed.program, db.copy())
            engine.query("conn(a, Y)?", strategy=strategy)
            engine.edb.add_fact("wire", ("b", "c"))
            answers = engine.query(
                "conn(a, Y)?", strategy=strategy
            ).answers
            assert ("a", "c") in answers, strategy

    def test_cache_kept_when_edb_unchanged(self):
        parsed = parse_program(self.PROGRAM)
        db = Database.from_facts({"wire": [("a", "b")]})
        engine = Engine(parsed.program, db)
        engine.query("conn(a, Y)?", strategy="separable")
        first = engine._base_db["conn"]
        # A duplicate insert is a no-op and must not bust the cache.
        db.add_fact("wire", ("a", "b"))
        engine.query("conn(b, Y)?", strategy="separable")
        assert engine._base_db["conn"] is first

    def test_fingerprint_tracks_mutation(self):
        db = Database.from_facts({"wire": [("a", "b")]})
        fp = db.fingerprint()
        assert db.fingerprint() == fp
        db.add_fact("wire", ("a", "b"))  # duplicate: no change
        assert db.fingerprint() == fp
        db.add_fact("wire", ("b", "c"))
        assert db.fingerprint() != fp


class TestErrors:
    def test_unknown_predicate(self, ex11_engine):
        engine, _, _ = ex11_engine
        with pytest.raises(UnknownPredicateError):
            engine.query("nothing(tom, Y)?")

    def test_unknown_strategy(self, ex11_engine):
        engine, _, _ = ex11_engine
        with pytest.raises(ValueError, match="unknown strategy"):
            engine.query("buys(tom, Y)?", strategy="quantum")

    def test_separable_strategy_on_nonseparable(self):
        program = section_5_nonseparable_program()
        engine = Engine(program, Database())
        with pytest.raises(NotSeparableError):
            engine.query("t(c, Y)?", strategy="separable")

    def test_nodedup_requires_full_selection(self, example_2_4):
        program, db = example_2_4
        engine = Engine(program, db)
        with pytest.raises(NotFullSelectionError):
            engine.query("t(c, Y, Z)?", strategy="nodedup")

    def test_budget_propagates(self):
        program = parse_program(
            "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."
        ).program
        db = Database.from_facts({"e": chain(60)})
        engine = Engine(program, db, budget=Budget(max_relation_tuples=5))
        with pytest.raises(BudgetExceeded):
            engine.query("tc(a0, Y)?", strategy="separable")


class TestQueryResult:
    def test_sorted_and_len(self, ex11_engine):
        engine, _, _ = ex11_engine
        result = engine.query("buys(tom, Y)?")
        assert len(result) == len(result.answers)
        assert result.sorted() == sorted(result.answers, key=repr)

    def test_accepts_atom_or_text(self, ex11_engine):
        engine, _, _ = ex11_engine
        from repro.datalog.parser import parse_query

        by_text = engine.query("buys(tom, Y)?")
        by_atom = engine.query(parse_query("buys(tom, Y)?"))
        assert by_text.answers == by_atom.answers

    def test_stats_strategy_recorded(self, ex11_engine):
        engine, _, _ = ex11_engine
        result = engine.query("buys(tom, Y)?", strategy="magic")
        assert result.stats.strategy == "magic"
