"""Unit tests for workload generators and the paper's databases."""

import networkx as nx
import pytest

from repro.datalog.parser import parse_atom
from repro.workloads.generators import (
    binary_tree,
    chain,
    cycle,
    grid,
    node,
    random_dag,
    random_graph,
    star,
)
from repro.workloads.paper import (
    example_1_1_database,
    example_1_2_database,
    lemma_4_2_database,
    lemma_4_2_program,
    lemma_4_3_database,
    lemma_4_3_program,
)


class TestGenerators:
    def test_node(self):
        assert node("a", 3) == "a3"

    def test_chain(self):
        edges = chain(4)
        assert edges == [("a0", "a1"), ("a1", "a2"), ("a2", "a3")]

    def test_chain_trivial(self):
        assert chain(1) == []
        assert chain(0) == []

    def test_cycle(self):
        edges = cycle(3)
        assert ("a2", "a0") in edges
        assert len(edges) == 3
        assert cycle(0) == []

    def test_binary_tree(self):
        edges = binary_tree(3)
        g = nx.DiGraph(edges)
        assert nx.is_directed_acyclic_graph(g)
        assert len(g.nodes) == 7
        assert g.out_degree("a0") == 2

    def test_grid(self):
        edges = grid(3, 3)
        g = nx.DiGraph(edges)
        assert nx.is_directed_acyclic_graph(g)
        assert len(edges) == 12  # 2 * 3 * 2 internal edges

    def test_random_graph_deterministic(self):
        assert random_graph(10, 15, seed=3) == random_graph(10, 15, seed=3)
        assert random_graph(10, 15, seed=3) != random_graph(10, 15, seed=4)

    def test_random_graph_edge_count(self):
        assert len(random_graph(10, 15, seed=0)) == 15

    def test_random_graph_caps_at_max(self):
        assert len(random_graph(3, 100, seed=0)) == 6

    def test_random_dag_acyclic(self):
        g = nx.DiGraph(random_dag(12, 30, seed=1))
        assert nx.is_directed_acyclic_graph(g)

    def test_star(self):
        edges = star(3)
        assert edges == [("a0", "a1"), ("a0", "a2"), ("a0", "a3")]


class TestPaperDatabases:
    def test_example_1_1_database(self):
        db = example_1_1_database(5)
        assert db.size("friend") == 4
        assert db.tuples("friend") == db.tuples("idol")
        assert db.tuples("perfectFor") == {("a5", "b5")}

    def test_example_1_2_database_closure_is_n_squared(self):
        """The Section 4 claim depends on buys = {(a_i, b_j)}: check it."""
        from repro.datalog.seminaive import seminaive_evaluate
        from repro.workloads.paper import example_1_2_program

        n = 6
        result = seminaive_evaluate(
            example_1_2_program(), example_1_2_database(n)
        )
        assert len(result.tuples("buys")) == n * n

    def test_lemma_4_2_database(self):
        db = lemma_4_2_database(3, 2, 2)
        assert db.size("t0") == 9  # n^k
        assert db.size("a1") == 2
        assert db.size("a2") == 0

    def test_lemma_4_2_program_structure(self):
        program = lemma_4_2_program(3, 2)
        assert len(program.rules_for("t")) == 3
        assert program.arity("t") == 3

    def test_lemma_4_3_database(self):
        db = lemma_4_3_database(4, 2, 3)
        assert db.tuples("a1") == db.tuples("a2") == db.tuples("a3")
        assert db.size("t0") == 1

    def test_lemma_programs_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            lemma_4_2_program(0, 1)
        with pytest.raises(ValueError):
            lemma_4_3_program(1, 0)

    def test_lemma_4_3_answers_exist(self):
        """t0 is reachable from c1, so the query has answers."""
        from repro.engine import Engine

        engine = Engine(lemma_4_3_program(2, 2), lemma_4_3_database(4, 2, 2))
        result = engine.query("t(c1, Y)?", strategy="separable")
        assert result.answers
