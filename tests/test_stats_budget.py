"""Unit tests for EvaluationStats and Budget."""

import pytest

from repro.budget import UNLIMITED, Budget
from repro.datalog.errors import BudgetExceeded
from repro.stats import EvaluationStats


class TestEvaluationStats:
    def test_record_relation_keeps_max(self):
        stats = EvaluationStats()
        stats.record_relation("carry_1", 5)
        stats.record_relation("carry_1", 3)
        stats.record_relation("carry_1", 9)
        assert stats.relation_sizes["carry_1"] == 9

    def test_zero_size_recorded(self):
        stats = EvaluationStats()
        stats.record_relation("empty", 0)
        assert stats.relation_sizes["empty"] == 0

    def test_max_relation_size(self):
        stats = EvaluationStats()
        stats.record_relation("a", 3)
        stats.record_relation("b", 7)
        assert stats.max_relation_size == 7
        assert stats.total_relation_size == 10

    def test_max_relation_size_empty(self):
        assert EvaluationStats().max_relation_size == 0

    def test_largest_relation(self):
        stats = EvaluationStats()
        stats.record_relation("a", 3)
        stats.record_relation("b", 7)
        assert stats.largest_relation() == ("b", 7)

    def test_largest_relation_empty(self):
        assert EvaluationStats().largest_relation() == ("", 0)

    def test_counters(self):
        stats = EvaluationStats()
        stats.bump_iterations()
        stats.bump_iterations(2)
        stats.bump_produced(5)
        stats.bump_examined(7)
        assert stats.iterations == 3
        assert stats.tuples_produced == 5
        assert stats.tuples_examined == 7

    def test_merge(self):
        a = EvaluationStats()
        a.record_relation("r", 4)
        a.bump_produced(2)
        b = EvaluationStats()
        b.record_relation("r", 9)
        b.record_relation("s", 1)
        b.bump_produced(3)
        a.merge(b)
        assert a.relation_sizes == {"r": 9, "s": 1}
        assert a.tuples_produced == 5

    def test_as_dict(self):
        stats = EvaluationStats(strategy="separable")
        stats.record_relation("seen_1", 4)
        d = stats.as_dict()
        assert d["strategy"] == "separable"
        assert d["max_relation_size"] == 4
        assert d["largest_relation"] == "seen_1"

    def test_format_table(self):
        stats = EvaluationStats(strategy="magic")
        stats.record_relation("magic_p", 12)
        text = stats.format_table()
        assert "magic" in text and "magic_p" in text and "12" in text


class TestBudget:
    def test_relation_budget(self):
        budget = Budget(max_relation_tuples=10)
        budget.check_relation("r", 10)  # at the limit: fine
        with pytest.raises(BudgetExceeded):
            budget.check_relation("r", 11)

    def test_total_budget(self):
        budget = Budget(max_total_tuples=10)
        stats = EvaluationStats()
        stats.record_relation("a", 6)
        stats.record_relation("b", 4)
        budget.check_stats(stats)
        stats.record_relation("c", 1)
        with pytest.raises(BudgetExceeded):
            budget.check_stats(stats)

    def test_iteration_budget(self):
        budget = Budget(max_iterations=3)
        stats = EvaluationStats()
        stats.bump_iterations(4)
        with pytest.raises(BudgetExceeded):
            budget.check_stats(stats)

    def test_error_carries_stats(self):
        budget = Budget(max_relation_tuples=1)
        stats = EvaluationStats()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check_relation("r", 5, stats)
        assert excinfo.value.stats is stats

    def test_unlimited_never_trips(self):
        stats = EvaluationStats()
        stats.record_relation("huge", 10**12)
        stats.bump_iterations(10**9)
        UNLIMITED.check_relation("huge", 10**12, stats)
        UNLIMITED.check_stats(stats)
