"""Unit and property tests for EvaluationStats and Budget."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.budget import UNLIMITED, Budget
from repro.datalog.errors import BudgetExceeded
from repro.stats import EvaluationStats


class TestEvaluationStats:
    def test_record_relation_keeps_max(self):
        stats = EvaluationStats()
        stats.record_relation("carry_1", 5)
        stats.record_relation("carry_1", 3)
        stats.record_relation("carry_1", 9)
        assert stats.relation_sizes["carry_1"] == 9

    def test_zero_size_recorded(self):
        stats = EvaluationStats()
        stats.record_relation("empty", 0)
        assert stats.relation_sizes["empty"] == 0

    def test_max_relation_size(self):
        stats = EvaluationStats()
        stats.record_relation("a", 3)
        stats.record_relation("b", 7)
        assert stats.max_relation_size == 7
        assert stats.total_relation_size == 10

    def test_max_relation_size_empty(self):
        assert EvaluationStats().max_relation_size == 0

    def test_largest_relation(self):
        stats = EvaluationStats()
        stats.record_relation("a", 3)
        stats.record_relation("b", 7)
        assert stats.largest_relation() == ("b", 7)

    def test_largest_relation_empty(self):
        assert EvaluationStats().largest_relation() == ("", 0)

    def test_counters(self):
        stats = EvaluationStats()
        stats.bump_iterations()
        stats.bump_iterations(2)
        stats.bump_produced(5)
        stats.bump_examined(7)
        assert stats.iterations == 3
        assert stats.tuples_produced == 5
        assert stats.tuples_examined == 7

    def test_merge(self):
        a = EvaluationStats()
        a.record_relation("r", 4)
        a.bump_produced(2)
        b = EvaluationStats()
        b.record_relation("r", 9)
        b.record_relation("s", 1)
        b.bump_produced(3)
        a.merge(b)
        assert a.relation_sizes == {"r": 9, "s": 1}
        assert a.tuples_produced == 5

    def test_as_dict(self):
        stats = EvaluationStats(strategy="separable")
        stats.record_relation("seen_1", 4)
        d = stats.as_dict()
        assert d["strategy"] == "separable"
        assert d["max_relation_size"] == 4
        assert d["largest_relation"] == "seen_1"

    def test_format_table(self):
        stats = EvaluationStats(strategy="magic")
        stats.record_relation("magic_p", 12)
        text = stats.format_table()
        assert "magic" in text and "magic_p" in text and "12" in text


class TestBudget:
    def test_relation_budget(self):
        budget = Budget(max_relation_tuples=10)
        budget.check_relation("r", 10)  # at the limit: fine
        with pytest.raises(BudgetExceeded):
            budget.check_relation("r", 11)

    def test_total_budget(self):
        budget = Budget(max_total_tuples=10)
        stats = EvaluationStats()
        stats.record_relation("a", 6)
        stats.record_relation("b", 4)
        budget.check_stats(stats)
        stats.record_relation("c", 1)
        with pytest.raises(BudgetExceeded):
            budget.check_stats(stats)

    def test_iteration_budget(self):
        budget = Budget(max_iterations=3)
        stats = EvaluationStats()
        stats.bump_iterations(4)
        with pytest.raises(BudgetExceeded):
            budget.check_stats(stats)

    def test_error_carries_stats(self):
        budget = Budget(max_relation_tuples=1)
        stats = EvaluationStats()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check_relation("r", 5, stats)
        assert excinfo.value.stats is stats

    def test_unlimited_never_trips(self):
        stats = EvaluationStats()
        stats.record_relation("huge", 10**12)
        stats.bump_iterations(10**9)
        UNLIMITED.check_relation("huge", 10**12, stats)
        UNLIMITED.check_stats(stats)


# -- hypothesis strategies ---------------------------------------------------

_sizes = st.dictionaries(
    st.sampled_from(["magic", "count", "carry_1", "seen_2", "ans", "t"]),
    st.integers(min_value=0, max_value=10**6),
    max_size=6,
)
_counter = st.integers(min_value=0, max_value=10**6)


@st.composite
def _stats(draw):
    stats = EvaluationStats(strategy=draw(st.sampled_from(["", "separable"])))
    for name, size in draw(_sizes).items():
        stats.record_relation(name, size)
    stats.bump_iterations(draw(_counter))
    stats.bump_produced(draw(_counter))
    stats.bump_examined(draw(_counter))
    return stats


def _snapshot(stats: EvaluationStats):
    return (
        dict(stats.relation_sizes),
        stats.iterations,
        stats.tuples_produced,
        stats.tuples_examined,
    )


class TestMergeProperties:
    """Algebraic laws of EvaluationStats.merge (Lemma 2.1 unions)."""

    @given(_stats(), _stats())
    def test_merge_is_pointwise_max_and_counter_sum(self, a, b):
        before_a = _snapshot(a)
        before_b = _snapshot(b)
        a.merge(b)
        sizes_a, its_a, prod_a, exam_a = before_a
        sizes_b, its_b, prod_b, exam_b = before_b
        expected = {
            name: max(sizes_a.get(name, -1), sizes_b.get(name, -1))
            for name in {*sizes_a, *sizes_b}
        }
        assert a.relation_sizes == expected
        assert a.iterations == its_a + its_b
        assert a.tuples_produced == prod_a + prod_b
        assert a.tuples_examined == exam_a + exam_b
        # merge must not mutate its argument
        assert _snapshot(b) == before_b

    @given(_stats(), _stats())
    def test_merge_order_insensitive_on_sizes(self, a, b):
        """The paper's union measure: sizes commute (counters reorder
        freely too, being sums)."""
        a2 = EvaluationStats()
        a2.merge(a)
        b2 = EvaluationStats()
        b2.merge(b)
        a2.merge(b)
        b2.merge(a)
        assert a2.relation_sizes == b2.relation_sizes
        assert a2.max_relation_size == b2.max_relation_size
        assert a2.iterations == b2.iterations

    @given(_stats())
    def test_merge_with_self_doubles_counters_keeps_sizes(self, a):
        sizes, its, prod, exam = _snapshot(a)
        a.merge(a)
        assert a.relation_sizes == sizes
        assert a.iterations == 2 * its
        assert a.tuples_produced == 2 * prod
        assert a.tuples_examined == 2 * exam

    @given(_stats())
    def test_merge_identity(self, a):
        before = _snapshot(a)
        a.merge(EvaluationStats())
        assert _snapshot(a) == before

    @given(_stats())
    def test_summary_invariants(self, a):
        assert 0 <= a.max_relation_size <= a.total_relation_size
        name, size = a.largest_relation()
        assert size == a.max_relation_size
        if a.relation_sizes:
            assert a.relation_sizes[name] == size


class TestBudgetProperties:
    @given(_stats(), st.integers(min_value=0, max_value=10**6))
    def test_check_relation_trips_iff_over(self, stats, size):
        budget = Budget(max_relation_tuples=1000)
        if size > 1000:
            with pytest.raises(BudgetExceeded):
                budget.check_relation("r", size, stats)
        else:
            budget.check_relation("r", size, stats)

    @given(_stats())
    def test_check_stats_trips_iff_over(self, stats):
        budget = Budget(max_total_tuples=500, max_iterations=500)
        over = (
            stats.total_relation_size > 500 or stats.iterations > 500
        )
        if over:
            with pytest.raises(BudgetExceeded) as excinfo:
                budget.check_stats(stats)
            assert excinfo.value.stats is stats
        else:
            budget.check_stats(stats)

    def test_zero_budget_allows_zero_work(self):
        """The degenerate budget admits exactly the empty evaluation."""
        budget = Budget(
            max_relation_tuples=0, max_total_tuples=0, max_iterations=0
        )
        budget.check_relation("r", 0)
        budget.check_stats(EvaluationStats())
        empty = EvaluationStats()
        empty.record_relation("r", 0)
        budget.check_stats(empty)  # zero-size relations cost nothing

    def test_zero_budget_rejects_any_work(self):
        budget = Budget(
            max_relation_tuples=0, max_total_tuples=0, max_iterations=0
        )
        with pytest.raises(BudgetExceeded):
            budget.check_relation("r", 1)
        one_tuple = EvaluationStats()
        one_tuple.record_relation("r", 1)
        with pytest.raises(BudgetExceeded):
            budget.check_stats(one_tuple)
        one_iter = EvaluationStats()
        one_iter.bump_iterations()
        with pytest.raises(BudgetExceeded):
            budget.check_stats(one_iter)


class TestWallClockBudget:
    def test_default_is_unlimited(self):
        budget = Budget()
        assert budget.max_wall_seconds is None
        assert budget.deadline is None
        budget.check_wall()  # unarmed: a no-op forever

    def test_unarmed_limit_never_trips(self):
        # A wall limit without start_clock() is inert by design: the
        # deadline is per-query, armed by Engine.query.
        budget = Budget(max_wall_seconds=0.0)
        budget.check_wall()

    def test_start_clock_arms_a_deadline(self):
        budget = Budget(max_wall_seconds=10.0).start_clock(now=100.0)
        assert budget.deadline == 110.0
        assert budget.remaining_seconds(now=104.0) == 6.0

    def test_start_clock_without_limit_is_identity(self):
        budget = Budget()
        assert budget.start_clock() is budget

    def test_expired_deadline_trips_with_wall_clock_limit(self):
        budget = Budget(max_wall_seconds=0.0).start_clock(now=0.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check_wall()
        assert excinfo.value.limit == "wall_clock"
        assert excinfo.value.retryable
        assert "wall clock" in str(excinfo.value)

    def test_check_stats_also_checks_the_wall(self):
        budget = Budget(max_wall_seconds=0.0).start_clock(now=0.0)
        stats = EvaluationStats()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check_stats(stats)
        assert excinfo.value.limit == "wall_clock"
        assert excinfo.value.stats is stats

    def test_with_wall_limit_replaces_and_disarms(self):
        armed = Budget(max_wall_seconds=5.0).start_clock(now=0.0)
        tightened = armed.with_wall_limit(1.0)
        assert tightened.max_wall_seconds == 1.0
        assert tightened.deadline is None  # must be re-armed

    def test_limit_tags_name_the_tripped_limit(self):
        stats = EvaluationStats()
        stats.record_relation("r", 2)
        with pytest.raises(BudgetExceeded) as excinfo:
            Budget(max_relation_tuples=1).check_relation("r", 2, stats)
        assert excinfo.value.limit == "relation_tuples"
        assert not excinfo.value.retryable

        over_iters = EvaluationStats()
        over_iters.bump_iterations(2)
        with pytest.raises(BudgetExceeded) as excinfo:
            Budget(max_iterations=1).check_stats(over_iters)
        assert excinfo.value.limit == "iterations"
        assert not excinfo.value.retryable

    def test_engine_query_arms_the_wall_clock_per_query(self):
        from repro.datalog.database import Database
        from repro.engine import Engine
        from repro.workloads.paper import example_1_1_program

        program = example_1_1_program()
        db = Database.from_facts(
            {
                "friend": [("tom", "sue")],
                "idol": [],
                "perfectFor": [("sue", "boat")],
            }
        )
        engine = Engine(program, db, budget=Budget(max_wall_seconds=30.0))
        # Far-off deadline: queries pass, and pass again later (each
        # call re-arms, so the limit never becomes "since construction").
        result = engine.query("buys(tom, Y)?")
        assert result.answers == frozenset({("tom", "boat")})
        with pytest.raises(BudgetExceeded) as excinfo:
            engine.query(
                "buys(tom, Y)?",
                budget=Budget(max_wall_seconds=0.0),
            )
        assert excinfo.value.limit == "wall_clock"
