"""Shared fixtures and oracles for the test suite.

The central oracle is :func:`oracle_answers`: semi-naive materialization
followed by query matching.  Every strategy (Separable, Magic, Counting,
no-dedup) is tested for answer-set equality against it.
"""

from __future__ import annotations

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.programs import Program
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Constant, Variable
from repro.workloads import paper


def oracle_answers(program: Program, edb: Database, query: Atom) -> frozenset:
    """Reference answers: full materialization + selection filter."""
    materialized = seminaive_evaluate(program, edb)
    answers = set()
    for fact in materialized.tuples(query.predicate):
        bindings: dict[Variable, object] = {}
        ok = True
        for value, term in zip(fact, query.args):
            if isinstance(term, Constant):
                if term.value != value:
                    ok = False
                    break
            else:
                prior = bindings.setdefault(term, value)
                if prior != value:
                    ok = False
                    break
        if ok:
            answers.add(fact)
    return frozenset(answers)


@pytest.fixture
def example_1_1():
    """(program, database) for Example 1.1 with a small concrete EDB."""
    program = paper.example_1_1_program()
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann"), ("ann", "joe")],
            "idol": [("tom", "ann"), ("joe", "kim")],
            "perfectFor": [
                ("ann", "camera"),
                ("kim", "tent"),
                ("sue", "boat"),
            ],
        }
    )
    return program, db


@pytest.fixture
def example_1_2():
    """(program, database) for Example 1.2 with a small concrete EDB."""
    program = paper.example_1_2_program()
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann")],
            "cheaper": [("cup", "knife"), ("knife", "tent")],
            "perfectFor": [("ann", "tent"), ("tom", "boat")],
        }
    )
    return program, db


@pytest.fixture
def example_2_4():
    """(program, database) for the ternary Example 2.4 recursion."""
    program = paper.example_2_4_program()
    db = Database.from_facts(
        {
            "a": [
                ("c", "d", "e", "f"),
                ("e", "f", "g", "h"),
                ("c", "x", "e", "f"),
            ],
            "b": [("p", "q"), ("q", "r")],
            "t0": [("g", "h", "p"), ("e", "f", "p"), ("c", "d", "z")],
        }
    )
    return program, db


@pytest.fixture
def transitive_closure():
    """The classic separable recursion: transitive closure of an edge set."""
    program = parse_program(
        """
        tc(X, Y) :- edge(X, W) & tc(W, Y).
        tc(X, Y) :- edge(X, Y).
        """
    ).program
    db = Database.from_facts(
        {
            "edge": [
                ("a", "b"),
                ("b", "c"),
                ("c", "d"),
                ("b", "e"),
                ("e", "d"),
            ]
        }
    )
    return program, db
