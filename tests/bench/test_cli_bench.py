"""The ``repro-datalog bench`` subcommand end to end (in process).

Covers the write mode, the ``--check`` regression mode against a real
baseline (pass, injected-slowdown fail, missing baseline), and the
argument-validation exits.  Sizes are tiny so the whole module stays
CI-cheap; the magic cells still clear the gating noise floor.
"""

import json

import pytest

import repro.bench.harness as harness
from repro.cli import main


def _bench(tmp_path, *extra):
    return main(
        [
            "bench",
            "--families",
            "e2",
            "--sizes",
            "4,6",
            "--repeats",
            "2",
            "--out-dir",
            str(tmp_path),
            *extra,
        ]
    )


@pytest.fixture(scope="module")
def baseline_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("baseline")
    assert _bench(out) == 0
    return out


class TestWriteMode:
    def test_writes_schema_valid_report(self, baseline_dir, capsys):
        path = baseline_dir / "BENCH_e2.json"
        assert path.is_file()
        report = json.loads(path.read_text())
        assert report["schema"] == "repro-bench/1"
        assert report["family"] == "e2"
        assert report["sizes"] == [4, 6]
        assert all(
            cell["outcome"] == "ok" for cell in report["results"]
        )

    def test_summary_goes_to_stdout(self, tmp_path, capsys):
        assert _bench(tmp_path) == 0
        out = capsys.readouterr().out
        assert "e2:" in out
        assert "separable" in out
        assert "magic" in out
        assert "wrote" in out


class TestCheckMode:
    def test_passes_against_own_baseline(self, baseline_dir, capsys):
        code = _bench(
            baseline_dir, "--check", "--baseline-dir", str(baseline_dir)
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out.lower()

    def test_reduced_sizes_smoke_check_passes(
        self, baseline_dir, capsys
    ):
        """CI smoke mode: sweep a subset of the baseline's sizes."""
        code = main(
            [
                "bench",
                "--families",
                "e2",
                "--sizes",
                "6",
                "--repeats",
                "2",
                "--check",
                "--baseline-dir",
                str(baseline_dir),
            ]
        )
        assert code == 0

    def test_injected_slowdown_fails(
        self, baseline_dir, capsys, monkeypatch
    ):
        monkeypatch.setattr(harness, "_TEST_SLOWDOWN", 3.0)
        code = _bench(
            baseline_dir, "--check", "--baseline-dir", str(baseline_dir)
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "[time]" in out

    def test_check_mode_never_writes(self, baseline_dir, tmp_path):
        code = _bench(
            tmp_path, "--check", "--baseline-dir", str(baseline_dir)
        )
        assert code == 0
        assert not list(tmp_path.iterdir())

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        code = _bench(
            tmp_path, "--check", "--baseline-dir", str(tmp_path)
        )
        assert code == 2
        assert "no baseline" in capsys.readouterr().err


class TestArgumentValidation:
    def test_unknown_family(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--families",
                "e99",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_bad_sizes(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--families",
                "e2",
                "--sizes",
                "8,banana",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "--sizes" in capsys.readouterr().err

    def test_nonpositive_sizes(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--families",
                "e2",
                "--sizes",
                "0",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "positive" in capsys.readouterr().err
