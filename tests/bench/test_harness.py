"""Unit and smoke tests for the bench harness.

The full Section 4 sweeps live behind ``pytest -m bench``; here the
fits, the schema, and the report plumbing are pinned with workloads
small enough for every CI run.
"""

import json

import pytest

from repro.bench import (
    SCHEMA,
    calibrate,
    classify_exponent,
    fit_exponent,
    git_sha,
    machine_info,
    report_path,
    run_family,
    write_report,
)
from repro.bench.families import FAMILIES

#: Keys every report must carry (docs/benchmarking.md documents them).
REPORT_KEYS = {
    "schema",
    "family",
    "title",
    "size_means",
    "expectation",
    "generated_at",
    "git_sha",
    "machine",
    "budget_max_relation_tuples",
    "backend",
    "repeats",
    "sizes",
    "calibration",
    "results",
    "fits",
}

CELL_KEYS = {
    "strategy",
    "n",
    "outcome",
    "answers",
    "max_relation_size",
    "tuples_produced",
    "tuples_examined",
    "iterations",
    "counters",
    "trace_violations",
    "median_s",
    "normalized",
}


@pytest.fixture(scope="module")
def calibration():
    return calibrate(repeats=1)


@pytest.fixture(scope="module")
def e2_report(calibration):
    return run_family(
        FAMILIES["e2"], [4, 6], repeats=1, calibration=calibration
    )


class TestFitExponent:
    def test_linear_points(self):
        points = [(n, 3.0 * n) for n in (4, 8, 16, 32)]
        assert fit_exponent(points) == pytest.approx(1.0)

    def test_quadratic_points(self):
        points = [(n, 0.5 * n * n) for n in (4, 8, 16, 32)]
        assert fit_exponent(points) == pytest.approx(2.0)

    def test_exponential_lands_far_above_cubic(self):
        points = [(n, 2.0 ** n) for n in (4, 8, 16, 32)]
        exponent = fit_exponent(points)
        assert exponent > 3.5
        assert classify_exponent(exponent) == "superpolynomial"

    def test_too_few_points_is_none(self):
        assert fit_exponent([]) is None
        assert fit_exponent([(8, 64.0)]) is None

    def test_zero_values_are_dropped(self):
        assert fit_exponent([(4, 0.0), (8, 0.0), (16, 0.0)]) is None

    def test_coincident_sizes_are_unfittable(self):
        assert fit_exponent([(8, 1.0), (8, 100.0)]) is None

    @pytest.mark.parametrize(
        "exponent,bucket",
        [
            (None, "unknown"),
            (0.02, "constant"),
            (1.0, "linear"),
            (1.97, "quadratic"),
            (3.0, "cubic"),
            (8.0, "superpolynomial"),
        ],
    )
    def test_classification_buckets(self, exponent, bucket):
        assert classify_exponent(exponent) == bucket


class TestCalibration:
    def test_unit_is_positive_and_labelled(self, calibration):
        assert calibration["unit_s"] > 0
        assert "chain(64)" in calibration["workload"]
        assert calibration["repeats"] == 1


class TestReportShape:
    def test_required_keys(self, e2_report):
        assert set(e2_report) == REPORT_KEYS
        assert e2_report["schema"] == SCHEMA
        assert e2_report["family"] == "e2"
        assert e2_report["sizes"] == [4, 6]

    def test_cells_are_complete(self, e2_report):
        assert e2_report["results"], "sweep produced no cells"
        for cell in e2_report["results"]:
            assert set(cell) == CELL_KEYS
            assert cell["outcome"] == "ok"
            assert cell["answers"] is not None
            assert cell["median_s"] > 0
            assert cell["normalized"] > 0
            assert cell["trace_violations"] == []
            assert cell["counters"]["tuples_examined"] > 0

    def test_one_cell_per_strategy_size_pair(self, e2_report):
        keys = [(c["strategy"], c["n"]) for c in e2_report["results"]]
        assert len(keys) == len(set(keys))
        assert len(keys) == len(FAMILIES["e2"].strategies) * 2

    def test_fits_cover_both_metrics(self, e2_report):
        pairs = {(f["strategy"], f["metric"]) for f in e2_report["fits"]}
        for strategy in FAMILIES["e2"].strategies:
            assert (strategy, "max_relation_size") in pairs
            assert (strategy, "median_s") in pairs

    def test_report_is_json_serializable(self, e2_report, tmp_path):
        path = write_report(e2_report, tmp_path)
        assert path == report_path(tmp_path, "e2")
        assert path.name == "BENCH_e2.json"
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["results"] == e2_report["results"]

    def test_machine_and_sha_blocks(self):
        info = machine_info()
        assert info["python"]
        assert info["platform"]
        sha = git_sha()
        assert sha == "unknown" or all(
            ch in "0123456789abcdef" for ch in sha
        )


class TestTraceExport:
    def test_trace_dir_writes_chrome_traces_per_cell(
        self, calibration, tmp_path
    ):
        trace_dir = tmp_path / "traces"
        report = run_family(
            FAMILIES["e2"], [4], repeats=1, calibration=calibration,
            trace_dir=trace_dir,
        )
        for cell in report["results"]:
            assert "trace" in cell
            path = tmp_path / "traces" / (
                f"e2-{cell['strategy']}-n{cell['n']}.trace.json"
            )
            assert str(path) == cell["trace"]
            data = json.loads(path.read_text())
            assert data["otherData"]["context"] == {
                "family": "e2",
                "strategy": cell["strategy"],
                "n": cell["n"],
            }
            depth = 0
            for event in data["traceEvents"]:
                if event["ph"] == "B":
                    depth += 1
                elif event["ph"] == "E":
                    depth -= 1
            assert depth == 0

    def test_without_trace_dir_cells_have_no_trace_key(self, e2_report):
        assert all("trace" not in c for c in e2_report["results"])


class TestDeterminism:
    def test_counters_and_sizes_repeat_exactly(self, calibration):
        """The hard-gated quantities are run-to-run stable."""
        first = run_family(
            FAMILIES["e2"], [6], repeats=1, calibration=calibration
        )
        second = run_family(
            FAMILIES["e2"], [6], repeats=1, calibration=calibration
        )
        for a, b in zip(first["results"], second["results"]):
            assert a["counters"] == b["counters"]
            assert a["max_relation_size"] == b["max_relation_size"]
            assert a["answers"] == b["answers"]


class TestIncrementalWriteFamily:
    """The maintenance pseudo-strategies through the real harness."""

    @pytest.fixture(scope="class")
    def iw_report(self, calibration):
        return run_family(
            FAMILIES["incremental-write"], [6], repeats=2,
            calibration=calibration,
        )

    def test_both_strategies_complete(self, iw_report):
        cells = {c["strategy"]: c for c in iw_report["results"]}
        assert set(cells) == {"incremental", "fromscratch"}
        for cell in cells.values():
            assert cell["outcome"] == "ok"
            assert cell["median_s"] > 0

    def test_answers_agree_across_strategies(self, iw_report):
        """The in-report delta oracle: repairs count the same answers
        after every write as a from-scratch recomputation."""
        cells = {c["strategy"]: c for c in iw_report["results"]}
        answers = cells["incremental"]["answers"]
        assert answers == cells["fromscratch"]["answers"]
        assert answers > 0

    def test_counters_stay_deterministic_zeros(self, iw_report):
        # Both runners bypass the tracer, so the hard counter gate
        # compares exact zeros instead of machine-dependent noise.
        for cell in iw_report["results"]:
            assert all(v == 0 for v in cell["counters"].values())
            assert cell["max_relation_size"] == 0

    def test_balanced_stream_restores_the_database(self):
        family = FAMILIES["incremental-write"]
        workload = family.build(6)
        before = workload.db.fingerprint()
        report = run_family(
            family, [6], repeats=1, calibration=calibrate(repeats=1)
        )
        assert report["results"][0]["outcome"] == "ok"
        assert family.build(6).db.fingerprint() == before


class TestSkewedJoinFamily:
    """The join-order pseudo-strategies through the real harness."""

    @pytest.fixture(scope="class")
    def sj_report(self, calibration):
        return run_family(
            FAMILIES["skewed-join"], [8], repeats=2,
            calibration=calibration,
        )

    def test_all_orders_complete_with_identical_digests(self, sj_report):
        cells = {c["strategy"]: c for c in sj_report["results"]}
        assert set(cells) == {
            "order-greedy", "order-left_to_right", "order-cost",
            "order-adaptive",
        }
        digests = set()
        for cell in cells.values():
            assert cell["outcome"] == "ok"
            assert cell["answers"] > 0
            digests.add(cell["answers_sha"])
        assert len(digests) == 1

    def test_cost_strictly_reduces_fanout(self, sj_report):
        cells = {c["strategy"]: c for c in sj_report["results"]}
        assert (cells["order-cost"]["counters"]["bindings_out"]
                < cells["order-greedy"]["counters"]["bindings_out"])

    def test_adaptive_replans_are_bounded(self, sj_report):
        cells = {c["strategy"]: c for c in sj_report["results"]}
        assert cells["order-adaptive"]["counters"]["plan_replans"] <= 2

    def test_replan_counters_only_move_under_adaptive(self, sj_report):
        for cell in sj_report["results"]:
            if cell["strategy"] == "order-adaptive":
                continue
            assert cell["counters"]["plan_replans"] == 0
            assert cell["counters"]["plan_misestimates"] == 0


@pytest.mark.bench
class TestSectionFourSeparations:
    """Opt-in (``pytest -m bench``): the paper's growth separations."""

    def test_e2_separable_linear_magic_quadratic(self):
        report = run_family(FAMILIES["e2"], [8, 16, 32], repeats=1)
        fits = {
            (f["strategy"], f["metric"]): f for f in report["fits"]
        }
        sep = fits[("separable", "max_relation_size")]
        magic = fits[("magic", "max_relation_size")]
        assert sep["classification"] == "linear", sep
        assert magic["classification"] == "quadratic", magic

    def test_e1_counting_superpolynomial(self):
        report = run_family(FAMILIES["e1"], [8, 16, 32], repeats=1)
        fits = {
            (f["strategy"], f["metric"]): f for f in report["fits"]
        }
        counting = fits[("counting", "max_relation_size")]
        assert counting["classification"] == "superpolynomial", counting
        sep = fits[("separable", "max_relation_size")]
        assert sep["classification"] == "linear", sep
