"""The family registry: resolution, construction, and strategy lists."""

import pytest

from repro.bench.families import FAMILIES, Workload, resolve_families
from repro.datalog.parser import parse_query
from repro.engine import STRATEGIES


class TestResolve:
    def test_all_keyword(self):
        assert resolve_families("all") == list(FAMILIES.values())

    def test_none_means_all(self):
        assert resolve_families(None) == list(FAMILIES.values())

    def test_subset_keeps_input_order(self):
        picked = resolve_families("e5,e1")
        assert [f.key for f in picked] == ["e5", "e1"]

    def test_whitespace_and_case_tolerated(self):
        picked = resolve_families(" E1 , e2 ")
        assert [f.key for f in picked] == ["e1", "e2"]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown famil"):
            resolve_families("e1,nope")


#: Harness-level pseudo-strategies with no Engine counterpart.
PSEUDO = {"detect", "incremental", "fromscratch", "serial",
          "parallel-1", "parallel-2", "parallel-4",
          "order-greedy", "order-left_to_right", "order-cost",
          "order-adaptive",
          "backend-none", "backend-memory", "backend-sqlite"}


class TestRegistry:
    def test_registry_keys(self):
        assert list(FAMILIES) == [f"e{i}" for i in range(1, 10)] + [
            "incremental-write", "out-of-core", "parallel-scaling",
            "skewed-join",
        ]

    @pytest.mark.parametrize("key", list(FAMILIES))
    def test_build_produces_runnable_workload(self, key):
        family = FAMILIES[key]
        workload = family.build(4)
        assert isinstance(workload, Workload)
        query = parse_query(workload.query)
        assert query.predicate
        assert family.strategies
        for strategy in family.strategies:
            assert strategy in PSEUDO or strategy in STRATEGIES

    def test_mutation_streams_are_balanced(self):
        """Every insert is deleted again: replays are idempotent."""
        for family in FAMILIES.values():
            if family.mutations is None:
                continue
            for n in (4, 9):
                ops = family.mutations(n)
                added = [
                    (rel, fact) for op, rel, fact in ops if op == "add"
                ]
                removed = [
                    (rel, fact) for op, rel, fact in ops if op == "del"
                ]
                assert sorted(added) == sorted(removed)
                assert len(set(added)) == len(added)

    def test_sizes_scale_the_data(self):
        small = FAMILIES["e2"].build(4)
        large = FAMILIES["e2"].build(16)
        total = lambda db: sum(
            db.size(p) for p in db.predicates()
        )
        assert total(large.db) > total(small.db)
