"""Regression-gate tests: ``compare_reports`` and the slowdown shim.

Synthetic reports pin each finding kind; the end-to-end tests run a
real (tiny) family twice and prove the gate is quiet on an honest
re-run but fires when the test-only sleep shim stretches every timed
repetition -- the acceptance story for ``bench --check``.
"""

import copy

import pytest

import repro.bench.harness as harness
from repro.bench import (
    backend_findings,
    calibrate,
    compare_reports,
    maintenance_findings,
    parallel_findings,
    run_family,
    skew_findings,
)
from repro.bench.families import FAMILIES
from repro.bench.gating import Finding


def _synthetic(normalized=1.0, median_s=0.01, **cell_overrides):
    cell = {
        "strategy": "magic",
        "n": 8,
        "outcome": "ok",
        "answers": 9,
        "max_relation_size": 64,
        "tuples_produced": 100,
        "tuples_examined": 200,
        "iterations": 5,
        "counters": {"tuples_examined": 200, "index_builds": 3},
        "trace_violations": [],
        "median_s": median_s,
        "normalized": normalized,
    }
    cell.update(cell_overrides)
    return {
        "schema": "repro-bench/1",
        "family": "e2",
        "sizes": [8],
        "results": [cell],
    }


class TestFindingKinds:
    def test_identical_reports_pass(self):
        base = _synthetic()
        assert compare_reports(base, copy.deepcopy(base)) == []

    def test_schema_mismatch_short_circuits(self):
        base = _synthetic()
        cur = _synthetic()
        cur["schema"] = "repro-bench/2"
        findings = compare_reports(base, cur)
        assert [f.kind for f in findings] == ["schema"]

    def test_missing_cell(self):
        cur = _synthetic()
        cur["results"] = []
        findings = compare_reports(_synthetic(), cur)
        assert [f.kind for f in findings] == ["missing"]

    def test_unswept_sizes_are_skipped(self):
        """A reduced-n smoke run only gates the sizes it swept."""
        cur = _synthetic()
        cur["sizes"] = [4]  # baseline cell is n=8: out of scope
        cur["results"] = []
        assert compare_reports(_synthetic(), cur) == []

    def test_outcome_change_suppresses_downstream_gates(self):
        cur = _synthetic(
            outcome="budget", answers=None, max_relation_size=10
        )
        findings = compare_reports(_synthetic(), cur)
        assert [f.kind for f in findings] == ["outcome"]

    def test_answer_drift_is_a_finding(self):
        findings = compare_reports(_synthetic(), _synthetic(answers=8))
        assert [f.kind for f in findings] == ["answers"]

    def test_size_drift_is_a_finding(self):
        findings = compare_reports(
            _synthetic(), _synthetic(max_relation_size=128)
        )
        assert [f.kind for f in findings] == ["size"]

    def test_counter_drift_is_exact_by_default(self):
        cur = _synthetic(
            counters={"tuples_examined": 201, "index_builds": 3}
        )
        findings = compare_reports(_synthetic(), cur)
        assert [f.kind for f in findings] == ["counter"]
        assert "tuples_examined" in findings[0].message

    def test_counter_tolerance_loosens_the_gate(self):
        cur = _synthetic(
            counters={"tuples_examined": 210, "index_builds": 3}
        )
        assert (
            compare_reports(_synthetic(), cur, counter_tolerance=0.1)
            == []
        )

    def test_slow_cell_is_a_time_finding(self):
        findings = compare_reports(
            _synthetic(normalized=1.0), _synthetic(normalized=2.0)
        )
        assert [f.kind for f in findings] == ["time"]
        assert "ratio 2.00" in findings[0].message

    def test_time_within_tolerance_passes(self):
        assert (
            compare_reports(
                _synthetic(normalized=1.0), _synthetic(normalized=1.5)
            )
            == []
        )

    def test_sub_noise_floor_cells_are_not_time_gated(self):
        base = _synthetic(normalized=1.0, median_s=1e-5)
        cur = _synthetic(normalized=50.0, median_s=5e-4)
        assert compare_reports(base, cur) == []

    def test_finding_renders_location(self):
        f = Finding("e2", "magic", 8, "time", "too slow")
        assert str(f) == "[time] e2/magic n=8: too slow"


def _maintenance_report(inc_s=0.002, fs_s=0.01, inc_answers=40,
                        fs_answers=40, outcome="ok"):
    def cell(strategy, median_s, answers):
        return {
            "strategy": strategy, "n": 8, "outcome": outcome,
            "answers": answers, "max_relation_size": 0,
            "tuples_produced": 0, "tuples_examined": 0, "iterations": 0,
            "counters": {}, "trace_violations": [],
            "median_s": median_s, "normalized": median_s / 0.005,
        }

    return {
        "schema": "repro-bench/1",
        "family": "incremental-write",
        "sizes": [8],
        "results": [
            cell("incremental", inc_s, inc_answers),
            cell("fromscratch", fs_s, fs_answers),
        ],
    }


class TestMaintenanceGate:
    def test_faster_incremental_passes(self):
        assert maintenance_findings(_maintenance_report()) == []

    def test_slower_incremental_fails(self):
        findings = maintenance_findings(
            _maintenance_report(inc_s=0.02, fs_s=0.01)
        )
        assert [f.kind for f in findings] == ["maintenance"]
        assert "beat recomputation" in findings[0].message

    def test_tie_fails(self):
        # "Strictly faster": a repair path that merely matches a full
        # recomputation is not earning its complexity.
        findings = maintenance_findings(
            _maintenance_report(inc_s=0.01, fs_s=0.01)
        )
        assert [f.kind for f in findings] == ["maintenance"]

    def test_answer_mismatch_is_a_correctness_finding(self):
        findings = maintenance_findings(
            _maintenance_report(inc_answers=41)
        )
        assert [f.kind for f in findings] == ["answers"]

    def test_noise_floor_skips_speed_but_not_answers(self):
        report = _maintenance_report(
            inc_s=9e-4, fs_s=5e-4, inc_answers=41
        )
        assert [f.kind for f in maintenance_findings(report)] == [
            "answers"
        ]

    def test_non_ok_cells_are_skipped(self):
        report = _maintenance_report(inc_s=0.02, outcome="budget")
        assert maintenance_findings(report) == []

    def test_compare_reports_runs_the_gate_on_the_current_run(self):
        base = _maintenance_report()
        cur = _maintenance_report(inc_s=0.02, fs_s=0.01)
        # Times moved under the baseline tolerance is irrelevant here:
        # the maintenance gate judges the current run against itself.
        findings = compare_reports(base, cur, time_tolerance=1e9)
        assert "maintenance" in {f.kind for f in findings}


def _parallel_report(serial_s=0.10, par_s=0.05, par_answers=100,
                     par_sha="aa", serial_sha="aa", cpu_count=8,
                     outcome="ok", untraced_fragments=0):
    def cell(strategy, median_s, answers, sha):
        return {
            "strategy": strategy, "n": 24, "outcome": outcome,
            "answers": answers, "answers_sha": sha,
            "max_relation_size": 0, "tuples_produced": 0,
            "tuples_examined": 0, "iterations": 0, "counters": {},
            "trace_violations": [], "median_s": median_s,
            "normalized": median_s / 0.005,
        }

    parallel_cell = cell("parallel-4", par_s, par_answers, par_sha)
    parallel_cell["untraced_fragments"] = untraced_fragments
    return {
        "schema": "repro-bench/1",
        "family": "parallel-scaling",
        "sizes": [24],
        "machine": {"cpu_count": cpu_count},
        "results": [
            cell("serial", serial_s, 100, serial_sha),
            parallel_cell,
        ],
    }


class TestParallelGate:
    def test_honest_speedup_passes(self):
        assert parallel_findings(_parallel_report()) == []

    def test_missing_speedup_fails_on_big_machines(self):
        findings = parallel_findings(_parallel_report(par_s=0.09))
        assert [f.kind for f in findings] == ["parallel"]
        assert "speedup" in findings[0].message

    def test_speedup_gate_is_hardware_gated(self):
        # A 1-CPU container cannot manufacture parallelism: physics,
        # not tolerance.  The correctness gates below still apply.
        report = _parallel_report(par_s=0.09, cpu_count=1)
        assert parallel_findings(report) == []

    def test_answer_count_mismatch_is_correctness(self):
        findings = parallel_findings(
            _parallel_report(par_answers=99, cpu_count=1)
        )
        assert [f.kind for f in findings] == ["answers"]

    def test_digest_mismatch_is_correctness_even_at_equal_counts(self):
        findings = parallel_findings(
            _parallel_report(par_sha="bb", cpu_count=1)
        )
        assert [f.kind for f in findings] == ["answers"]
        assert "digest" in findings[0].message

    def test_noise_floor_skips_speedup(self):
        report = _parallel_report(serial_s=0.001, par_s=0.002)
        assert parallel_findings(report) == []

    def test_untraced_fragments_fail_the_zero_overhead_gate(self):
        findings = parallel_findings(
            _parallel_report(cpu_count=1, untraced_fragments=3)
        )
        assert [f.kind for f in findings] == ["parallel"]
        assert "zero-overhead" in findings[0].message

    def test_old_baselines_without_the_key_are_skipped(self):
        report = _parallel_report(cpu_count=1)
        del report["results"][1]["untraced_fragments"]
        assert parallel_findings(report) == []

    def test_non_ok_cells_are_skipped(self):
        report = _parallel_report(par_s=0.2, outcome="budget")
        assert parallel_findings(report) == []

    def test_compare_reports_runs_the_gate_on_the_current_run(self):
        base = _parallel_report()
        cur = _parallel_report(par_sha="bb", cpu_count=1)
        findings = compare_reports(base, cur, time_tolerance=1e9)
        assert "answers" in {f.kind for f in findings}


def _skew_report(cost_s=0.002, greedy_s=0.01, cost_fanout=70,
                 greedy_fanout=670, cost_answers=4, cost_sha="aa",
                 greedy_sha="aa", replans=1, outcome="ok"):
    def cell(strategy, median_s, answers, sha, fanout, counters=None):
        return {
            "strategy": strategy, "n": 8, "outcome": outcome,
            "answers": answers, "answers_sha": sha,
            "max_relation_size": 0, "tuples_produced": 0,
            "tuples_examined": 0, "iterations": 0,
            "counters": {"bindings_out": fanout, **(counters or {})},
            "trace_violations": [], "median_s": median_s,
            "normalized": median_s / 0.005,
        }

    return {
        "schema": "repro-bench/1",
        "family": "skewed-join",
        "sizes": [8],
        "results": [
            cell("order-greedy", greedy_s, 4, greedy_sha, greedy_fanout),
            cell("order-left_to_right", greedy_s, 4, greedy_sha,
                 greedy_fanout),
            cell("order-cost", cost_s, cost_answers, cost_sha,
                 cost_fanout),
            cell("order-adaptive", cost_s, cost_answers, cost_sha,
                 cost_fanout, counters={"plan_replans": replans}),
        ],
    }


class TestSkewGate:
    def test_honest_cost_win_passes(self):
        assert skew_findings(_skew_report()) == []

    def test_fanout_tie_fails(self):
        # "Strictly reduces join fanout": matching greedy's fanout
        # means the cost model earned nothing.
        findings = skew_findings(_skew_report(cost_fanout=670))
        assert "plan" in {f.kind for f in findings}
        assert any("bindings_out" in f.message for f in findings)

    def test_wall_time_loss_fails(self):
        findings = skew_findings(_skew_report(cost_s=0.02))
        assert [f.kind for f in findings] == ["plan"]
        assert "wall time" in findings[0].message

    def test_noise_floor_waives_wall_clock_only(self):
        report = _skew_report(cost_s=9e-4, greedy_s=5e-4,
                              cost_fanout=670)
        findings = skew_findings(report)
        assert len(findings) == 1  # fanout still gated, time waived
        assert "bindings_out" in findings[0].message

    def test_answer_count_mismatch_is_correctness(self):
        findings = skew_findings(_skew_report(cost_answers=5))
        assert "answers" in {f.kind for f in findings}

    def test_digest_mismatch_is_correctness_even_at_equal_counts(self):
        findings = skew_findings(_skew_report(cost_sha="bb"))
        assert "answers" in {f.kind for f in findings}
        assert any("digest" in f.message for f in findings)

    def test_replan_budget_overrun_fails(self):
        findings = skew_findings(_skew_report(replans=3))
        assert [f.kind for f in findings] == ["plan"]
        assert "re-planned 3" in findings[0].message

    def test_non_ok_cells_are_skipped(self):
        assert skew_findings(_skew_report(outcome="budget")) == []

    def test_other_families_produce_no_findings(self):
        assert skew_findings(_parallel_report()) == []

    def test_compare_reports_runs_the_gate_on_the_current_run(self):
        base = _skew_report()
        cur = _skew_report(cost_sha="bb")
        findings = compare_reports(base, cur, time_tolerance=1e9)
        assert "answers" in {f.kind for f in findings}


def _backend_report(none_s=0.02, memory_s=0.022, sqlite_s=0.08,
                    memory_answers=43, memory_sha="aa",
                    sqlite_answers=43, sqlite_sha="aa", outcome="ok"):
    def cell(strategy, median_s, answers, sha):
        return {
            "strategy": strategy, "n": 64, "outcome": outcome,
            "answers": answers, "answers_sha": sha,
            "max_relation_size": 999, "tuples_produced": 0,
            "tuples_examined": 0, "iterations": 0,
            "counters": {}, "trace_violations": [],
            "median_s": median_s, "normalized": median_s / 0.005,
        }

    return {
        "schema": "repro-bench/1",
        "family": "out-of-core",
        "sizes": [64],
        "results": [
            cell("backend-none", none_s, 43, "aa"),
            cell("backend-memory", memory_s, memory_answers, memory_sha),
            cell("backend-sqlite", sqlite_s, sqlite_answers, sqlite_sha),
        ],
    }


class TestBackendGate:
    def test_honest_run_passes(self):
        assert backend_findings(_backend_report()) == []

    def test_memory_dispatch_overhead_fails(self):
        findings = backend_findings(_backend_report(memory_s=0.05))
        assert [f.kind for f in findings] == ["backend"]
        assert "selection must be free" in findings[0].message

    def test_sqlite_slowness_is_not_a_finding(self):
        # Paying per-probe SQL cost is the out-of-core deal, not a
        # regression; only correctness is gated for sqlite.
        assert backend_findings(_backend_report(sqlite_s=5.0)) == []

    def test_noise_floor_waives_overhead_only(self):
        report = _backend_report(none_s=1e-3, memory_s=1e-2,
                                 sqlite_sha="bb")
        findings = backend_findings(report)
        assert [f.kind for f in findings] == ["answers"]

    def test_answer_count_mismatch_is_correctness(self):
        findings = backend_findings(_backend_report(sqlite_answers=41))
        assert "answers" in {f.kind for f in findings}

    def test_digest_mismatch_is_correctness_even_at_equal_counts(self):
        findings = backend_findings(_backend_report(memory_sha="bb"))
        assert "answers" in {f.kind for f in findings}
        assert any("digest" in f.message for f in findings)

    def test_non_ok_cells_are_skipped(self):
        assert backend_findings(_backend_report(outcome="budget")) == []

    def test_other_families_produce_no_findings(self):
        assert backend_findings(_skew_report()) == []

    def test_compare_reports_runs_the_gate_on_the_current_run(self):
        base = _backend_report()
        cur = _backend_report(sqlite_sha="bb")
        findings = compare_reports(base, cur, time_tolerance=1e9)
        assert "answers" in {f.kind for f in findings}


@pytest.fixture(scope="module")
def calibration():
    return calibrate(repeats=1)


@pytest.fixture(scope="module")
def e2_baseline(calibration):
    # Sizes large enough that the magic medians clear the gate's 1ms
    # noise floor on any plausible machine; n=6 used to straddle it,
    # making the slowdown test pass or fail on scheduler luck.
    return run_family(
        FAMILIES["e2"], [8, 12], repeats=3, calibration=calibration
    )


class TestEndToEnd:
    def test_honest_rerun_passes(self, e2_baseline, calibration):
        rerun = run_family(
            FAMILIES["e2"], [8, 12], repeats=3, calibration=calibration
        )
        assert compare_reports(e2_baseline, rerun) == []

    def test_injected_slowdown_fails(
        self, e2_baseline, calibration, monkeypatch
    ):
        """The acceptance shim: a 3x sleep stretch must trip the gate.

        Only cells whose baseline median clears the 1ms noise floor are
        time-gated; on this family that is the magic strategy at n=12
        (and usually n=8), so at least one time finding must appear and
        nothing else may.
        """
        monkeypatch.setattr(harness, "_TEST_SLOWDOWN", 3.0)
        slowed = run_family(
            FAMILIES["e2"], [8, 12], repeats=3, calibration=calibration
        )
        findings = compare_reports(e2_baseline, slowed)
        assert findings, "3x slowdown escaped the regression gate"
        assert {f.kind for f in findings} == {"time"}
        assert ("magic", 12) in {(f.strategy, f.n) for f in findings}

    def test_shim_never_applies_to_calibration(self, monkeypatch):
        """A uniformly slower machine cancels; a slower code path must
        not -- so the shim stretches unit timings only."""
        baseline_unit = calibrate(repeats=1)["unit_s"]
        monkeypatch.setattr(harness, "_TEST_SLOWDOWN", 50.0)
        shimmed_unit = calibrate(repeats=1)["unit_s"]
        # 50x on ~20ms would be a full second; same order instead.
        assert shimmed_unit < baseline_unit * 10
