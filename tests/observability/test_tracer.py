"""Unit tests for the tracer primitives.

The exception-safety and counter-reconciliation tests drive the tracer
through real evaluations; this module pins the mechanics those tests
rely on: span nesting, innermost-span counter attribution, series
recording, the ``(toplevel)`` catch-all, and the :func:`live`
normalization that keeps the untraced hot path on one pointer check.
"""

import pytest

from repro.observability import NULL, NullTracer, Span, Tracer, live


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert t.roots == [outer]
        assert outer.children == [inner]
        assert inner.children == []

    def test_siblings_keep_order(self):
        t = Tracer()
        with t.span("parent"):
            with t.span("first"):
                pass
            with t.span("second"):
                pass
        (parent,) = t.roots
        assert [c.name for c in parent.children] == ["first", "second"]

    def test_current_tracks_innermost(self):
        t = Tracer()
        assert t.current is None
        with t.span("outer") as outer:
            assert t.current is outer
            with t.span("inner") as inner:
                assert t.current is inner
            assert t.current is outer
        assert t.current is None

    def test_walk_is_depth_first(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
            with t.span("d"):
                pass
        assert [s.name for s in t.spans()] == ["a", "b", "c", "d"]

    def test_duration_and_status(self):
        t = Tracer()
        with t.span("timed") as s:
            assert s.status == "open"
            assert s.duration_s is None
        assert s.closed
        assert s.status == "ok"
        assert s.duration_s >= 0

    def test_exception_records_type_and_closes(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("outer"):
                with t.span("inner"):
                    raise ValueError("boom")
        statuses = {s.name: s.status for s in t.spans()}
        assert statuses == {"outer": "ValueError", "inner": "ValueError"}
        assert t.all_closed()


class TestPayload:
    def test_counters_bump_innermost_open_span(self):
        t = Tracer()
        with t.span("outer") as outer:
            t.count("hits")
            with t.span("inner") as inner:
                t.count("hits", 2)
            t.count("hits")
        assert outer.counters == {"hits": 2}
        assert inner.counters == {"hits": 2}
        assert t.counter_total("hits") == 4

    def test_series_append_in_order(self):
        t = Tracer()
        with t.span("loop") as s:
            for v in (3, 1, 4):
                t.record("delta", v)
        assert s.series == {"delta": [3, 1, 4]}

    def test_counts_outside_any_span_land_on_toplevel(self):
        t = Tracer()
        t.count("orphan")
        t.record("stray", 7)
        (top,) = t.roots
        assert top.name == "(toplevel)"
        assert top.counters == {"orphan": 1}
        assert top.series == {"stray": [7]}
        assert t.all_closed()

    def test_to_dict_roundtrips_shape(self):
        t = Tracer()
        with t.span("outer", scc=["tc"]):
            t.count("iterations")
            t.record("delta", 5)
        d = t.to_dict()
        (span,) = d["spans"]
        assert span["name"] == "outer"
        assert span["attrs"] == {"scc": ["tc"]}
        assert span["counters"] == {"iterations": 1}
        assert span["series"] == {"delta": [5]}
        assert span["status"] == "ok"
        assert span["duration_s"] >= 0

    def test_format_tree_mentions_every_span(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                t.count("tuples_examined", 9)
        rendered = t.format_tree()
        assert "outer" in rendered
        assert "inner" in rendered
        assert "tuples_examined=9" in rendered


class TestNullTracer:
    def test_every_operation_is_a_noop(self):
        n = NullTracer()
        with n.span("anything", attr=1) as s:
            assert s is None
        n.count("x")
        n.record("y", 2)
        assert n.counter_total("x") == 0
        assert list(n.spans()) == []
        assert n.all_closed()
        assert n.to_dict() == {"spans": []}

    def test_live_normalizes_disabled_tracers_to_none(self):
        assert live(None) is None
        assert live(NULL) is None
        assert live(NullTracer()) is None
        t = Tracer()
        assert live(t) is t
