"""Traced counters must agree with :class:`EvaluationStats`.

``tuples_examined`` and ``iterations`` are bumped at the same program
points by both the statistics object and the tracer; if they ever
drift, one of the two instrumentation layers is lying, and every perf
claim built on the bench harness inherits the lie.  The paper examples
cover all strategy families (Separable carry loops, Magic seminaive
strata, the Counting descent/ascent).
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Constant, Variable
from repro.engine import Engine
from repro.observability import Tracer
from repro.stats import EvaluationStats
from repro.workloads import paper


def _example_1_1():
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann"), ("ann", "joe")],
            "idol": [("tom", "ann"), ("joe", "kim")],
            "perfectFor": [
                ("ann", "camera"),
                ("kim", "tent"),
                ("sue", "boat"),
            ],
        }
    )
    return paper.example_1_1_program(), db


def _example_1_2():
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann")],
            "cheaper": [("cup", "knife"), ("knife", "tent")],
            "perfectFor": [("ann", "tent"), ("tom", "boat")],
        }
    )
    return paper.example_1_2_program(), db


QUERY = Atom("buys", (Constant("tom"), Variable("Y")))

#: (workload, strategy) pairs covering every evaluator family that
#: reports both counters.  Counting only applies to Example 1.1 (the
#: cheaper-chain rule of 1.2 defeats its binding-pattern analysis).
CASES = [
    ("example_1_1", "separable"),
    ("example_1_1", "magic"),
    ("example_1_1", "counting"),
    ("example_1_1", "seminaive"),
    ("example_1_1", "naive"),
    ("example_1_1", "nodedup"),
    ("example_1_2", "separable"),
    ("example_1_2", "magic"),
    ("example_1_2", "seminaive"),
]

_WORKLOADS = {"example_1_1": _example_1_1, "example_1_2": _example_1_2}


@pytest.mark.parametrize(
    "workload,strategy", CASES, ids=[f"{w}-{s}" for w, s in CASES]
)
def test_traced_counters_match_stats(workload, strategy):
    program, db = _WORKLOADS[workload]()
    stats = EvaluationStats()
    tracer = Tracer()
    engine = Engine(program, db)
    engine.query(QUERY, strategy=strategy, stats=stats, tracer=tracer)
    assert tracer.counter_total("tuples_examined") == (
        stats.tuples_examined
    )
    assert tracer.counter_total("iterations") == stats.iterations
    # The run actually did work -- an all-zero trace would reconcile
    # trivially.
    assert stats.tuples_examined > 0
    assert stats.iterations > 0


def test_seminaive_materialization_reconciles():
    program, db = _example_1_2()
    stats = EvaluationStats()
    tracer = Tracer()
    seminaive_evaluate(program, db, stats=stats, tracer=tracer)
    assert tracer.counter_total("tuples_examined") == (
        stats.tuples_examined
    )
    assert tracer.counter_total("iterations") == stats.iterations


def test_delta_series_sum_matches_final_relation_size():
    """Per-round deltas are the decomposition of the final extent."""
    program, db = _example_1_2()
    tracer = Tracer()
    result = seminaive_evaluate(program, db, tracer=tracer)
    for span in tracer.spans("seminaive.scc"):
        final = span.attrs["final"]
        initial = span.attrs.get("initial", {})
        for predicate, end in final.items():
            deltas = span.series.get(f"delta:{predicate}", [])
            start = initial.get(predicate, 0)
            assert start + sum(deltas) == end == result.size(predicate)
