"""Chrome-trace and Prometheus exporters, live and replayed."""

import json
from pathlib import Path

import pytest

from repro.datalog.parser import parse_program
from repro.engine import Engine
from repro.observability import (
    JsonlFileSink,
    Tracer,
    escape_label_value,
    replay_file,
    to_chrome_trace,
    to_metrics_text,
)
from repro.observability.export import MetricFamilies

EX12 = """
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
friend(tom, sue).
cheaper(cup, tent).
perfectFor(sue, tent).
"""


def _traced_query(strategy, sink=None):
    parsed = parse_program(EX12)
    engine = Engine(parsed.program, parsed.database)
    tracer = Tracer(sink=sink, context={"strategy": strategy})
    engine.query("buys(tom, Y)?", strategy=strategy, tracer=tracer)
    return tracer


def _assert_balanced(events):
    """B/E pairs must nest like parentheses on the single track."""
    stack = []
    for event in events:
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack, f"E for {event['name']} with no open B"
            assert stack.pop() == event["name"]
    assert stack == [], f"unclosed B events: {stack}"


class TestChromeTrace:
    @pytest.mark.parametrize("strategy", ["separable", "seminaive",
                                          "magic", "nodedup"])
    def test_balanced_and_json_serializable(self, strategy):
        tracer = _traced_query(strategy)
        data = to_chrome_trace(tracer)
        json.dumps(data)  # must not contain unserializable values
        _assert_balanced(data["traceEvents"])
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["context"] == {"strategy": strategy}

    def test_timestamps_are_relative_microseconds(self):
        tracer = _traced_query("separable")
        events = to_chrome_trace(tracer)["traceEvents"]
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["ts"] >= 0.0 for e in events)

    def test_counter_totals_rise_monotonically(self):
        tracer = _traced_query("separable")
        events = to_chrome_trace(tracer)["traceEvents"]
        last: dict[str, int] = {}
        for event in events:
            if event["ph"] != "C" or "." in event["name"]:
                continue  # span-local series events may go up and down
            (value,) = event["args"].values()
            assert value >= last.get(event["name"], 0)
            last[event["name"]] = value
        assert "tuples_examined" in last

    def test_series_points_sit_inside_their_span(self):
        tracer = _traced_query("separable")
        events = to_chrome_trace(tracer)["traceEvents"]
        open_ts: dict[str, float] = {}
        for event in events:
            if event["ph"] == "B":
                open_ts[event["name"]] = event["ts"]
            elif event["ph"] == "C" and "." in event["name"]:
                span_name = event["name"].rsplit(".", 1)[0]
                assert event["ts"] >= open_ts[span_name]


class TestReplayEquivalence:
    @pytest.mark.parametrize("strategy", ["separable", "seminaive",
                                          "magic"])
    def test_exporters_byte_identical_live_vs_replayed(
        self, tmp_path, strategy
    ):
        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(path)
        live = _traced_query(strategy, sink=sink)
        sink.close()
        replayed = replay_file(path)
        assert json.dumps(to_chrome_trace(live), sort_keys=True) == \
            json.dumps(to_chrome_trace(replayed), sort_keys=True)
        assert to_metrics_text(live) == to_metrics_text(replayed)

    def test_counting_trace_replays_byte_identical(self, tmp_path):
        # Counting does not apply to EX12's binding pattern, so use the
        # paper's Example 1.1, where the descent/ascent spans exist.
        from repro.workloads.paper import (
            example_1_1_database,
            example_1_1_program,
        )

        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(path)
        engine = Engine(example_1_1_program(), example_1_1_database(6))
        tracer = Tracer(sink=sink)
        engine.query("buys(a1, Y)?", strategy="counting", tracer=tracer)
        sink.close()
        replayed = replay_file(path)
        assert json.dumps(to_chrome_trace(tracer), sort_keys=True) == \
            json.dumps(to_chrome_trace(replayed), sort_keys=True)
        assert {s.name for s in replayed.spans()} >= {
            "counting.descent", "counting.ascent",
        }


class TestMetricsText:
    def test_prometheus_shape(self):
        text = to_metrics_text(_traced_query("separable"))
        assert text.endswith("\n")
        assert "# TYPE repro_spans_total counter" in text
        assert "repro_tuples_examined_total" in text
        samples = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        for sample in samples:
            name, value = sample.rsplit(" ", 1)
            assert int(value) >= 0

    def test_rule_counters_become_labelled_samples(self):
        text = to_metrics_text(_traced_query("separable"))
        assert 'repro_rule_apps_total{rule="seen_1#0"}' in text

    def test_empty_tracer_exports_cleanly(self):
        tracer = Tracer()
        assert to_chrome_trace(tracer)["traceEvents"] == []
        assert "repro_spans_total 0" in to_metrics_text(tracer)


def _synthetic_tracer() -> Tracer:
    """Counters only -- to_metrics_text ignores timing, so the output
    is byte-deterministic and pinnable against a golden file."""
    tracer = Tracer()
    with tracer.span("separable.run"):
        tracer.count("tuples_examined", 12)
        tracer.count("bindings_out", 5)
        with tracer.span("separable.loop"):
            tracer.count("tuples_examined", 30)
            tracer.count("rule_apps:seen_1#0", 4)
            tracer.count("rule_out:seen_1#0", 9)
            tracer.count('rule_apps:odd"label\\with\nnasties', 2)
    return tracer


class TestExpositionFormat:
    GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"

    def test_matches_golden_file(self):
        # The exposition format is an interface: scrape configs and the
        # service exporter both depend on these exact shapes.  For an
        # intended format change, regenerate by writing
        # to_metrics_text(_synthetic_tracer()) back over the file.
        assert to_metrics_text(_synthetic_tracer()) == \
            self.GOLDEN.read_text()

    def test_help_and_type_once_per_family(self):
        text = to_metrics_text(_traced_query("separable"))
        for prefix in ("# HELP ", "# TYPE "):
            declared = [
                line.split()[2]
                for line in text.splitlines()
                if line.startswith(prefix)
            ]
            assert len(declared) == len(set(declared)), (
                f"duplicate {prefix.strip()} declarations"
            )

    def test_label_values_are_escaped(self):
        text = to_metrics_text(_synthetic_tracer())
        assert (
            'repro_rule_apps_total{rule="odd\\"label\\\\with\\nnasties"} 2'
            in text
        )

    def test_escape_label_value(self):
        assert escape_label_value("plain#ok") == "plain#ok"
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value(7) == "7"

    def test_metric_families_declares_once(self):
        lines: list[str] = []
        families = MetricFamilies(lines)
        families.declare("m_total", "A metric.")
        families.declare("m_total", "A metric again.")
        families.declare("g", "A gauge.", kind="gauge")
        assert lines == [
            "# HELP m_total A metric.",
            "# TYPE m_total counter",
            "# HELP g A gauge.",
            "# TYPE g gauge",
        ]
