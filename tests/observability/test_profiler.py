"""Engine.profile and the EXPLAIN ANALYZE report."""

import json

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.plan_cache import PLAN_CACHE
from repro.engine import Engine
from repro.observability import (
    QueryProfile,
    RingBufferSink,
    rule_rows,
)

EX12 = """
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
friend(tom, sue).
cheaper(cup, tent).
perfectFor(sue, tent).
"""


@pytest.fixture
def engine():
    parsed = parse_program(EX12)
    return Engine(parsed.program, parsed.database)


class TestEngineProfile:
    def test_returns_result_and_advice(self, engine):
        prof = engine.profile("buys(tom, Y)?")
        assert isinstance(prof, QueryProfile)
        assert prof.requested == "auto"
        assert prof.result.strategy == "separable"
        assert len(prof.result.answers) == 2
        assert "separable" in prof.advice.recommended
        assert prof.wall_s > 0

    def test_explicit_strategy(self, engine):
        prof = engine.profile("buys(tom, Y)?", strategy="seminaive")
        assert prof.result.strategy == "seminaive"
        assert {s.name for s in prof.tracer.spans()} >= {"seminaive.scc"}

    def test_sink_receives_the_run(self, engine):
        sink = RingBufferSink()
        prof = engine.profile("buys(tom, Y)?", sink=sink)
        kinds = {e["type"] for e in sink}
        assert {"trace_start", "span_open", "span_close"} <= kinds
        start = next(iter(sink))
        assert start["context"]["query"] == "buys(tom, Y)"
        assert prof.tracer.sink is sink


class TestRenderText:
    def test_report_sections(self, engine):
        text = engine.profile("buys(tom, Y)?").render_text()
        assert text.startswith("EXPLAIN ANALYZE  buys(tom, Y)?")
        for section in ("-- plan --", "-- strategy advice --",
                        "-- spans --", "-- per-rule work --",
                        "-- generated relations (Definition 4.2) --",
                        "-- per-iteration series --", "-- totals --"):
            assert section in text, f"missing section {section}"
        assert "join_fanout" in text

    def test_timed_report_shows_shares(self, engine):
        text = engine.profile("buys(tom, Y)?").render_text(timings=True)
        assert "wall-clock" in text
        assert "%" in text

    def test_untimed_report_is_deterministic(self):
        # Fresh engine and plan cache per run: a reused engine
        # legitimately skips index builds the first run paid for, and a
        # warm plan cache turns compiles into hits, shifting those
        # counters.
        def report():
            PLAN_CACHE.clear()
            parsed = parse_program(EX12)
            eng = Engine(parsed.program, parsed.database)
            return eng.profile("buys(tom, Y)?").render_text(timings=False)

        first = report()
        second = report()
        assert first == second
        assert "ms" not in first
        assert "wall-clock" not in first

    def test_rewritten_strategy_rule_rows(self, engine):
        text = engine.profile(
            "buys(tom, Y)?", strategy="seminaive"
        ).render_text(timings=False)
        assert "buys#0" in text  # per-source-rule accounting

    def test_default_order_has_no_planner_section(self, engine):
        prof = engine.profile("buys(tom, Y)?", strategy="seminaive")
        assert prof.planner_summary() is None
        assert "-- planner" not in prof.render_text(timings=False)

    def test_cost_order_reports_estimate_vs_observed(self):
        PLAN_CACHE.clear()
        parsed = parse_program(EX12)
        eng = Engine(parsed.program, parsed.database, order="cost")
        prof = eng.profile("buys(tom, Y)?", strategy="seminaive")
        planner = prof.planner_summary()
        assert planner is not None
        assert planner["estimated_rows"] >= 1
        assert planner["observed_bindings"] >= 1
        assert "advice" in planner
        text = prof.render_text(timings=False)
        assert "-- planner (estimate vs observed)" in text
        assert "advice:" in text
        assert prof.to_json()["planner"] == planner


class TestToJson:
    def test_shape_and_serializability(self, engine):
        prof = engine.profile("buys(tom, Y)?")
        data = prof.to_json()
        json.dumps(data)
        assert data["query"] == "buys(tom, Y)"
        assert data["strategy"] == "separable"
        assert data["answers"] == 2
        assert data["stats"]["relation_sizes"]["seen_1"] >= 1
        assert any(r["label"].startswith("seen_1#") for r in data["rules"])
        assert len(data["trace"]["spans"]) >= 1
        names = {s["name"] for s in data["trace"]["spans"]}
        assert "separable.loop" in names

    def test_chrome_and_metrics_delegates(self, engine):
        prof = engine.profile("buys(tom, Y)?")
        chrome = prof.to_chrome_trace()
        assert chrome["traceEvents"]
        assert "repro_spans_total" in prof.to_metrics_text()


class TestRuleRows:
    def test_rows_aggregate_apps_and_out(self, engine):
        prof = engine.profile("buys(tom, Y)?")
        rows = rule_rows(prof.tracer)
        by_label = {r.label: r for r in rows}
        assert by_label["seen_1#0"].applications >= 1
        assert by_label["seen_1#0"].tuples_out >= 1
        assert by_label["exit#0"].applications == 1
