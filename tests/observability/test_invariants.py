"""trace_violations on strategies and outcomes it does not model.

The invariant checker knows the ``seminaive.scc`` and
``separable.loop`` span shapes.  Everything else -- the Counting
descent/ascent spans, budget-truncated runs -- must pass through with
*no false positives*: a partial trace is not a broken trace, and a
strategy the checker has no model for is not a violation.
"""

import pytest

from repro.budget import Budget
from repro.datalog.errors import BudgetExceeded
from repro.engine import Engine
from repro.observability import Tracer, trace_violations
from repro.workloads.paper import (
    example_1_1_database,
    example_1_1_program,
)


def _engine(n=6, budget=None):
    kwargs = {} if budget is None else {"budget": budget}
    return Engine(
        example_1_1_program(), example_1_1_database(n), **kwargs
    )


class TestCountingTraces:
    def test_clean_counting_run_has_no_violations(self):
        tracer = Tracer()
        result = _engine().query(
            "buys(a1, Y)?", strategy="counting", tracer=tracer
        )
        assert result.answers
        assert trace_violations(tracer) == []

    def test_counting_records_descent_and_ascent_spans(self):
        tracer = Tracer()
        _engine().query("buys(a1, Y)?", strategy="counting", tracer=tracer)
        names = [s.name for s in tracer.spans()]
        assert "counting.descent" in names
        assert "counting.ascent" in names
        assert all(s.closed for s in tracer.spans())

    def test_counting_rule_accounting_counters(self):
        tracer = Tracer()
        _engine().query("buys(a1, Y)?", strategy="counting", tracer=tracer)
        apps = {
            name
            for span in tracer.spans()
            for name in span.counters
            if name.startswith("rule_apps:")
        }
        assert any(name.startswith("rule_apps:down#") for name in apps)
        assert any(name.startswith("rule_apps:exit#") for name in apps)


class TestBudgetTruncatedTraces:
    """A BudgetExceeded abort leaves a *partial* trace: spans unwound
    (exception safety), aborted loops status-gated out of the
    monotone-termination and sum-consistency checks."""

    @pytest.mark.parametrize("strategy", ["counting", "separable",
                                          "seminaive"])
    def test_no_false_positives_on_partial_trace(self, strategy):
        tracer = Tracer()
        budget = Budget(max_relation_tuples=2)
        with pytest.raises(BudgetExceeded):
            _engine(n=8, budget=budget).query(
                "buys(a1, Y)?", strategy=strategy, tracer=tracer
            )
        assert trace_violations(tracer) == []

    @pytest.mark.parametrize("strategy", ["counting", "separable",
                                          "seminaive"])
    def test_every_span_closed_after_abort(self, strategy):
        tracer = Tracer()
        budget = Budget(max_relation_tuples=2)
        with pytest.raises(BudgetExceeded):
            _engine(n=8, budget=budget).query(
                "buys(a1, Y)?", strategy=strategy, tracer=tracer
            )
        spans = list(tracer.spans())
        assert spans
        assert all(s.closed for s in spans)
        # The aborted loop's status records the exception class, which
        # is what gates it out of the fixpoint-shape checks above.
        assert any(s.status == "BudgetExceeded" for s in spans)
