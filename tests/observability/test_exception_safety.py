"""Spans must close even when an evaluation dies mid-fixpoint.

The paper's expensive regimes end in exceptions by design --
Generalized Counting raises :class:`CyclicDataError` on cyclic data
(Lemma 3.4) and the exponential baselines trip ``BudgetExceeded`` --
so the tracer's exception path is a first-class code path: every span
unwinds, the aborting span records the exception type, and the
invariant checker stays quiet (aborted loops are status-gated).
"""

import pytest

from repro.budget import Budget
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.errors import BudgetExceeded, CyclicDataError
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable
from repro.engine import Engine
from repro.observability import Tracer, trace_violations
from repro.workloads import cycle, paper


@pytest.fixture
def example_1_1():
    program = paper.example_1_1_program()
    db = Database.from_facts(
        {
            "friend": [("tom", "sue"), ("sue", "ann"), ("ann", "joe")],
            "idol": [("tom", "ann"), ("joe", "kim")],
            "perfectFor": [
                ("ann", "camera"),
                ("kim", "tent"),
                ("sue", "boat"),
            ],
        }
    )
    return program, db


def test_budget_exceeded_mid_fixpoint_closes_all_spans(example_1_1):
    program, db = example_1_1
    query = Atom("buys", (Constant("tom"), Variable("Y")))
    tracer = Tracer()
    engine = Engine(program, db, budget=Budget(max_relation_tuples=5))
    with pytest.raises(BudgetExceeded):
        engine.query(query, strategy="magic", tracer=tracer)
    assert tracer.all_closed()
    statuses = [s.status for s in tracer.spans()]
    assert "BudgetExceeded" in statuses
    assert "open" not in statuses
    assert trace_violations(tracer) == []


def test_cyclic_data_error_mid_descent_closes_all_spans():
    parsed = parse_program(
        "tc(X, Y) :- e(X, W) & tc(W, Y).\n"
        "tc(X, Y) :- e(X, Y).\n"
    )
    db = Database.from_facts({"e": cycle(4)})
    query = Atom("tc", (Constant("a0"), Variable("Y")))
    tracer = Tracer()
    with pytest.raises(CyclicDataError):
        Engine(parsed.program, db).query(
            query, strategy="counting", tracer=tracer
        )
    assert tracer.all_closed()
    statuses = [s.status for s in tracer.spans()]
    assert "CyclicDataError" in statuses
    assert "open" not in statuses
    assert trace_violations(tracer) == []


def test_clean_run_leaves_no_open_spans_and_no_violations(example_1_1):
    program, db = example_1_1
    query = Atom("buys", (Constant("tom"), Variable("Y")))
    for strategy in ("separable", "magic", "counting", "seminaive"):
        tracer = Tracer()
        Engine(program, db).query(query, strategy=strategy, tracer=tracer)
        assert tracer.all_closed(), strategy
        assert trace_violations(tracer) == [], strategy
        assert all(s.status == "ok" for s in tracer.spans()), strategy
