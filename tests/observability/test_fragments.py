"""Trace fragments: capture in one tracer, stitch into another.

These are in-process unit tests of the fragment machinery itself --
no worker pools.  The cross-process reconciliation guarantees live in
``tests/parallel/test_trace_stitching.py``.
"""

import json
import pickle

import pytest

from repro.observability import (
    FRAGMENT_SCHEMA,
    NONPORTABLE_COUNTERS,
    RingBufferSink,
    Tracer,
    capture_fragment,
    install_fragment,
    reconciled_counter_totals,
    replay_trace,
    to_chrome_trace,
    to_metrics_text,
    trace_violations,
)
from repro.observability.fragments import TraceFragment
from repro.observability.tracer import Span
from repro.service import MetricsTracer


def _worker_style_tracer() -> Tracer:
    """A closed span tree shaped like a traced worker task."""
    tracer = Tracer()
    with tracer.span("worker.branch", seeds=2):
        with tracer.span("separable.loop", relation="up_1"):
            tracer.count("tuples_examined", 10)
            tracer.count("rule_apps:up_1#0", 3)
            tracer.count("plan_cache_hits", 4)  # nonportable
            tracer.record("delta", 5)
            tracer.record("delta", 2)
        with tracer.span("separable.exit"):
            tracer.count("index_builds", 1)  # nonportable
            tracer.count("bindings_out", 7)
    return tracer


class TestCapture:
    def test_empty_tracer_captures_none(self):
        assert capture_fragment(Tracer(), pid=123) is None
        assert capture_fragment(None, pid=123) is None

    def test_fragment_shape_and_offsets(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        assert fragment.schema == FRAGMENT_SCHEMA
        assert fragment.pid == 42
        assert fragment.extent_s >= 0.0
        root = fragment.spans[0]
        assert root["name"] == "worker.branch"
        assert root["start"] == 0.0
        assert root["end"] == pytest.approx(fragment.extent_s)
        names = [p["name"] for p in fragment.iter_spans()]
        assert names == ["worker.branch", "separable.loop",
                         "separable.exit"]
        loop = root["children"][0]
        assert loop["series"] == {"delta": [5, 2]}
        # Times are offsets inside [0, extent], never absolute clocks.
        for packed in fragment.iter_spans():
            assert 0.0 <= packed["start"] <= packed["end"]
            assert packed["end"] <= fragment.extent_s + 1e-9

    def test_nonportable_counters_move_to_cache_warmup(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        for packed in fragment.iter_spans():
            assert not NONPORTABLE_COUNTERS & set(packed["counters"])
        assert fragment.cache_warmup == {
            "plan_cache_hits": 4, "index_builds": 1,
        }
        totals = fragment.counter_totals()
        assert totals == {
            "tuples_examined": 10,
            "rule_apps:up_1#0": 3,
            "bindings_out": 7,
        }

    def test_fragment_pickles(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        clone = pickle.loads(pickle.dumps(fragment))
        assert clone.counter_totals() == fragment.counter_totals()
        assert clone.span_count == fragment.span_count


class TestInstall:
    def test_host_span_and_revived_children(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        parent = Tracer()
        with parent.span("separable.run"):
            host = install_fragment(
                parent, fragment, anchor_s=100.0, task="branch"
            )
        assert host.name == "parallel.worker"
        assert host.attrs["worker_pid"] == 42
        assert host.attrs["task"] == "branch"
        assert host.attrs["cache_warmup"] == {
            "plan_cache_hits": 4, "index_builds": 1,
        }
        assert host.start_s == 100.0
        assert host.end_s == pytest.approx(100.0 + fragment.extent_s)
        # Grafted under the innermost open span, not as a new root.
        run = parent.roots[0]
        assert host in run.children
        assert [c.name for c in host.children] == ["worker.branch"]
        assert trace_violations(parent) == []

    def test_counters_fold_into_reconciled_totals(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        parent = Tracer()
        with parent.span("separable.run"):
            parent.count("tuples_examined", 5)
            install_fragment(parent, fragment, anchor_s=0.0)
        totals = reconciled_counter_totals(parent)
        assert totals["tuples_examined"] == 15
        assert totals["rule_apps:up_1#0"] == 3
        assert not NONPORTABLE_COUNTERS & set(totals)

    def test_none_fragment_or_tracer_is_a_noop(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=1)
        assert install_fragment(Tracer(), None) is None
        assert install_fragment(None, fragment) is None

    def test_sinked_install_replays_byte_identical(self):
        # attach_closed must emit the synthetic open/series/close
        # events so a replayed trace exports the same bytes.
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        sink = RingBufferSink()
        parent = Tracer(sink=sink)
        with parent.span("separable.run"):
            install_fragment(parent, fragment, anchor_s=50.0)
        replayed = replay_trace(list(sink.events))
        assert json.dumps(to_chrome_trace(parent), sort_keys=True) == \
            json.dumps(to_chrome_trace(replayed), sort_keys=True)
        assert to_metrics_text(parent) == to_metrics_text(replayed)

    def test_chrome_export_gets_a_worker_lane(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        parent = Tracer()
        with parent.span("separable.run"):
            install_fragment(parent, fragment, anchor_s=0.0)
        events = to_chrome_trace(parent)["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 42}
        lanes = {
            (e["pid"], e["args"]["name"])
            for e in events if e["ph"] == "M"
        }
        assert lanes == {(1, "parent"), (42, "worker 42")}


class TestAttachClosed:
    def test_rejects_open_spans(self):
        tracer = Tracer()
        open_span = Span("still.open", {})
        with pytest.raises(ValueError):
            tracer.attach_closed(open_span)

    def test_attaches_at_root_when_no_span_open(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=7)
        parent = Tracer()
        host = install_fragment(parent, fragment, anchor_s=0.0)
        assert host in parent.roots


class TestMetricsFacadeAbsorb:
    def test_install_dispatches_to_absorb_fragment(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=42)
        facade = MetricsTracer()
        assert install_fragment(facade, fragment) is None
        counters = facade.counters()
        assert counters["span:worker.branch"] == 1
        assert counters["span:separable.loop"] == 1
        assert counters["tuples_examined"] == 10
        # Warmup folds back in: the facade aggregates total work done.
        assert counters["plan_cache_hits"] == 4
        seconds = facade.span_seconds()
        assert seconds["worker.branch"] >= 0.0

    def test_absorb_tracer_matches_direct_use(self):
        recorded = _worker_style_tracer()
        facade = MetricsTracer()
        facade.absorb_tracer(recorded)
        counters = facade.counters()
        assert counters["span:separable.exit"] == 1
        assert counters["bindings_out"] == 7
        assert counters["rule_apps:up_1#0"] == 3
        assert set(facade.span_seconds()) == {
            "worker.branch", "separable.loop", "separable.exit",
        }


class TestReconciledTotals:
    def test_drops_only_the_nonportable_set(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.count("tuples_examined", 1)
            for name in NONPORTABLE_COUNTERS:
                tracer.count(name, 9)
        assert reconciled_counter_totals(tracer) == {
            "tuples_examined": 1
        }

    def test_default_anchor_uses_recv_time(self):
        fragment = capture_fragment(_worker_style_tracer(), pid=3)
        fragment.recv_s = 1000.0
        parent = Tracer()
        host = install_fragment(parent, fragment)
        assert host.end_s == pytest.approx(1000.0)
        assert host.start_s == pytest.approx(1000.0 - fragment.extent_s)

    def test_fragment_defaults(self):
        fragment = TraceFragment(
            pid=1, origin_s=0.0, extent_s=0.0, spans=()
        )
        assert fragment.cache_warmup == {}
        assert fragment.recv_s is None
        assert fragment.span_count == 0
