"""The default (untraced) path must not pay for the tracer's existence.

Every hot loop guards its emissions with ``tracer is not None`` and
entry points normalize :data:`NULL` to ``None`` via :func:`live`, so
``tracer=None`` and ``tracer=NULL`` must execute byte-identical inner
loops.  The timing check compares the two on a 10k-fact semi-naive
materialization with a deliberately loose bound -- it exists to catch
someone re-introducing per-tuple tracer calls on the default path, not
to benchmark (that is ``repro-datalog bench``'s job).
"""

import statistics
import time

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_evaluate
from repro.observability import NULL, Tracer
from repro.workloads import star

#: One hub fanning out to 10,000 leaves: a 10k-fact EDB whose TC is
#: another 10k facts, big enough that per-tuple overhead would show.
N_LEAVES = 10_000

_PROGRAM = parse_program(
    "tc(X, Y) :- e(X, W) & tc(W, Y).\n"
    "tc(X, Y) :- e(X, Y).\n"
).program


def _database():
    return Database.from_facts({"e": star(N_LEAVES)})


def _run(tracer):
    db = _database()
    start = time.perf_counter()
    result = seminaive_evaluate(_PROGRAM, db, tracer=tracer)
    elapsed = time.perf_counter() - start
    assert result.size("tc") == N_LEAVES
    return elapsed


def _median_time(tracer, repeats=5):
    return statistics.median(_run(tracer) for _ in range(repeats))


def test_null_tracer_within_noise_of_none():
    none_t = _median_time(None)
    null_t = _median_time(NULL)
    # live() turns both into the same None fast path; 1.5x tolerates CI
    # scheduling noise while still catching an un-normalized NULL that
    # pays a method call per tuple (an order-of-magnitude regression on
    # this workload).
    assert null_t <= none_t * 1.5 + 0.01, (
        f"NULL tracer path took {null_t:.4f}s vs {none_t:.4f}s untraced"
    )
    assert none_t <= null_t * 1.5 + 0.01, (
        f"untraced path took {none_t:.4f}s vs {null_t:.4f}s with NULL"
    )


def test_live_tracer_records_the_same_run():
    """Sanity: the instrumented path observes the 10k-fact workload."""
    tracer = Tracer()
    _run(tracer)
    (scc,) = tracer.spans("seminaive.scc")
    assert scc.attrs["final"] == {"tc": N_LEAVES}
    assert tracer.counter_total("tuples_examined") > N_LEAVES


def test_jsonl_sink_overhead_bounded(tmp_path):
    """Streaming events to a JSONL file must stay cheap.

    Events fire per span and per iteration -- counter totals ride on
    span_close, never per tuple -- so an E2-style run (Example 1.2,
    magic, n=64) with a file sink attached must finish within 2x the
    untraced wall-clock (plus an additive constant for timer noise on
    a fast cell).
    """
    from repro.engine import Engine
    from repro.observability import JsonlFileSink
    from repro.workloads.paper import (
        example_1_2_database,
        example_1_2_program,
    )

    def run(sink_path=None):
        engine = Engine(example_1_2_program(), example_1_2_database(64))
        sink = JsonlFileSink(sink_path) if sink_path is not None else None
        tracer = Tracer(sink=sink) if sink is not None else None
        start = time.perf_counter()
        result = engine.query(
            "buys(a1, Y)?", strategy="magic", tracer=tracer
        )
        elapsed = time.perf_counter() - start
        if sink is not None:
            sink.close()
        assert result.answers
        return elapsed

    untraced = statistics.median(run() for _ in range(5))
    traced = statistics.median(
        run(tmp_path / f"t{i}.jsonl") for i in range(5)
    )
    assert traced <= untraced * 2.0 + 0.05, (
        f"JSONL-sink run took {traced:.4f}s vs {untraced:.4f}s untraced"
    )
