"""Event sinks, the JSONL wire format, and trace replay."""

import json

import pytest

from repro.observability import (
    EVENT_SCHEMA,
    CompositeSink,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    read_events,
    replay_file,
    replay_trace,
)


def _traced_run(sink, context=None):
    """A small two-loop trace exercising spans, counters and series."""
    tracer = Tracer(sink=sink, context=context or {"query": "q"})
    with tracer.span("outer", phase="demo"):
        with tracer.span("separable.loop", relation="seen_1", seed=1) as s:
            tracer.count("iterations")
            tracer.count("tuples_examined", 7)
            tracer.record("carry", 3)
            tracer.record("carry", 0)
            s.attrs["final_seen"] = 4
    tracer.count("stray")  # lands on the implicit (toplevel) span
    return tracer


class TestRingBufferSink:
    def test_receives_every_event(self):
        sink = RingBufferSink()
        _traced_run(sink)
        kinds = [e["type"] for e in sink]
        assert kinds[0] == "trace_start"
        assert kinds.count("span_open") == kinds.count("span_close") == 3
        assert "count" in kinds and "series" in kinds

    def test_bounded_capacity_keeps_the_tail(self):
        sink = RingBufferSink(capacity=4)
        _traced_run(sink)
        assert len(sink) == 4
        assert sink.capacity == 4
        # The oldest events (trace_start, first opens) fell off.
        assert all(e["type"] != "trace_start" for e in sink)

    def test_trace_start_carries_schema_and_context(self):
        sink = RingBufferSink()
        _traced_run(sink, context={"query": "p(a, X)", "n": 8})
        start = next(iter(sink))
        assert start["schema"] == EVENT_SCHEMA
        assert start["context"] == {"query": "p(a, X)", "n": 8}


class TestCompositeSink:
    def test_fans_out_to_all_sinks(self, tmp_path):
        ring = RingBufferSink()
        path = tmp_path / "t.jsonl"
        jsonl = JsonlFileSink(path)
        sink = CompositeSink(ring, jsonl)
        _traced_run(sink)
        sink.close()
        assert [e for e in ring] == read_events(path)


class TestJsonlRoundTrip:
    def test_file_is_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlFileSink(path) as sink:
            _traced_run(sink)
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_read_events_rejects_non_streams(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span_open"}\n')
        with pytest.raises(ValueError, match="trace_start"):
            read_events(path)
        path.write_text(
            '{"type": "trace_start", "schema": "repro-events/999"}\n'
        )
        with pytest.raises(ValueError, match="schema"):
            read_events(path)

    def test_replay_rebuilds_the_span_forest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlFileSink(path) as sink:
            live = _traced_run(sink)
        replayed = replay_file(path)
        assert replayed.context == live.context
        live_spans = list(live.spans())
        replayed_spans = list(replayed.spans())
        assert [s.name for s in replayed_spans] == [
            s.name for s in live_spans
        ]
        for mine, theirs in zip(replayed_spans, live_spans):
            assert mine.attrs == theirs.attrs
            assert mine.counters == theirs.counters
            assert mine.series == theirs.series
            assert mine.status == theirs.status
            assert mine.start_s == theirs.start_s
            assert mine.end_s == theirs.end_s

    def test_replay_carries_close_time_attr_mutations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlFileSink(path) as sink:
            _traced_run(sink)
        (loop,) = replay_file(path).spans("separable.loop")
        assert loop.attrs["final_seen"] == 4

    def test_replay_skips_unknown_event_types(self):
        sink = RingBufferSink()
        _traced_run(sink)
        events = list(sink)
        events.insert(1, {"type": "heartbeat", "t": 0.0})
        replayed = replay_trace(events)
        assert [s.name for s in replayed.spans("separable.loop")]


class TestSinklessTracer:
    def test_no_sink_means_no_events_and_no_sid_cost(self):
        tracer = _traced_run(None)
        assert tracer.sink is None
        assert list(tracer.spans("separable.loop"))
