"""Transitive closure and the limits of separability.

Two classic recursions side by side:

* **Transitive closure** -- ``tc(X,Y) :- e(X,W) & tc(W,Y)`` -- is
  separable (the [HH87] special case the paper mentions); reachability
  queries compile to a single down loop and run in time proportional to
  the reachable subgraph, cyclic data included.
* **Same generation** -- ``sg(X,Y) :- up(X,U) & sg(U,V) & down(V,Y)``
  -- is NOT separable (its nonrecursive subgoals split into two
  maximal connected sets, the Section 5 counterexample), and the
  engine's ``auto`` strategy falls back to Generalized Magic Sets.

Run:  python examples/transitive_closure.py
"""

from repro import Database, Engine, parse_program
from repro.workloads.generators import cycle, random_graph

TC_PROGRAM = """
tc(X, Y) :- edge(X, W) & tc(W, Y).
tc(X, Y) :- edge(X, Y).
"""

SG_PROGRAM = """
sg(X, Y) :- up(X, U) & sg(U, V) & down(V, Y).
sg(X, Y) :- flat(X, Y).
"""


def transitive_closure_demo() -> None:
    print("=== transitive closure (separable) ===")
    edges = random_graph(200, 500, seed=7) + cycle(10, "loop")
    parsed = parse_program(TC_PROGRAM)
    engine = Engine(parsed.program, Database.from_facts({"edge": edges}))
    print(engine.report("tc").explain())

    result = engine.query("tc(a0, Y)?")
    print(
        f"\ntc(a0, Y)? -> {len(result.answers)} nodes reachable "
        f"(strategy: {result.strategy})"
    )
    print(result.stats.format_table())

    # Cyclic part: the seen-difference of Figure 2 terminates the loop.
    result = engine.query("tc(loop0, Y)?")
    print(
        f"\ntc(loop0, Y)? on the 10-cycle -> "
        f"{sorted(y for _, y in result.answers)}"
    )


def same_generation_demo() -> None:
    print("\n=== same generation (NOT separable) ===")
    db = Database.from_facts(
        {
            "up": [("alice", "p1"), ("p1", "gp"), ("bob", "p2"), ("p2", "gp")],
            "down": [("gp", "p1"), ("gp", "p2"), ("p1", "alice"),
                     ("p2", "bob")],
            "flat": [("gp", "gp")],
        }
    )
    engine = Engine(parse_program(SG_PROGRAM).program, db)
    report = engine.report("sg")
    print(report.explain())

    result = engine.query("sg(alice, Y)?")
    print(
        f"\nsg(alice, Y)? -> {sorted(y for _, y in result.answers)} "
        f"(auto fell back to strategy: {result.strategy})"
    )


if __name__ == "__main__":
    transitive_closure_demo()
    same_generation_demo()
