"""The Section 4 showdown: watch 2^n and n^2 beat O(n) in real time.

Sweeps the paper's two adversarial databases and prints the size of the
largest relation each method generates:

* Example 1.1 + ``buys(a1, Y)?``: Generalized Counting's ``count``
  relation doubles with every extra constant (the paper: "a 30 tuple
  database can generate a several gigabyte relation") while Separable
  stays at n.
* Example 1.2 + ``buys(a1, Y)?``: Generalized Magic Sets materializes
  the full n^2 ``buys`` relation while Separable stays at n.

Run:  python examples/complexity_showdown.py
"""

from repro import Budget, EvaluationStats
from repro.core.api import evaluate_separable
from repro.datalog.errors import BudgetExceeded
from repro.datalog.parser import parse_atom
from repro.rewriting.counting import evaluate_counting
from repro.rewriting.magic import evaluate_magic
from repro.workloads.paper import (
    example_1_1_database,
    example_1_1_program,
    example_1_2_database,
    example_1_2_program,
)

QUERY = parse_atom("buys(a1, Y)")
BUDGET = Budget(max_relation_tuples=500_000)


def measure(evaluator, program, db):
    stats = EvaluationStats()
    try:
        evaluator(program, db, QUERY, stats=stats, budget=BUDGET)
    except BudgetExceeded:
        return ">500k (budget exceeded)"
    return str(stats.max_relation_size)


def showdown(title, program_factory, database_factory, baseline, name):
    print(f"\n=== {title} ===")
    print(f"{'n':>5}  {name:>22}  {'separable':>10}")
    for n in (4, 8, 12, 16, 20):
        program = program_factory()
        db = database_factory(n)
        base = measure(baseline, program, db)
        sep = measure(evaluate_separable, program, db)
        print(f"{n:>5}  {base:>22}  {sep:>10}")


def main() -> None:
    showdown(
        "E1: Example 1.1 -- Generalized Counting vs Separable",
        example_1_1_program,
        example_1_1_database,
        evaluate_counting,
        "counting (2^n - 1)",
    )
    showdown(
        "E2: Example 1.2 -- Generalized Magic Sets vs Separable",
        example_1_2_program,
        example_1_2_database,
        evaluate_magic,
        "magic (n^2)",
    )
    print(
        "\nBoth baselines explode exactly as Section 4 predicts; the "
        "Separable column is the paper's O(n)."
    )


if __name__ == "__main__":
    main()
