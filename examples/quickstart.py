"""Quickstart: define a recursion, detect separability, run a query.

This is Example 1.1 from the paper -- people buy products that are
perfect for them, or that their friends or idols bought -- evaluated
through the top-level :class:`repro.Engine`, which detects that the
recursion is separable and compiles the specialized plan.

Run:  python examples/quickstart.py
"""

from repro import Engine, parse_program

PROGRAM = """
% Example 1.1 (Naughton 1988): a person buys a product if it is
% perfect for them, or if a friend or idol bought it.
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- perfectFor(X, Y).

friend(tom, sue).
friend(sue, ann).
idol(tom, ann).
idol(ann, liz).
perfectFor(ann, camera).
perfectFor(liz, guitar).
perfectFor(sue, boat).
"""


def main() -> None:
    parsed = parse_program(PROGRAM)
    engine = Engine(parsed.program, parsed.database)

    # 1. Detection: the Definition 2.4 report.
    report = engine.report("buys")
    print("=== separability report ===")
    print(report.explain())

    # 2. A selection query; "auto" picks the Separable strategy.
    result = engine.query("buys(tom, Y)?")
    print("\n=== buys(tom, Y)? ===")
    print(f"strategy: {result.strategy}")
    for fact in result.sorted():
        print(f"  buys{fact}")

    # 3. A selection on the persistent column works too (the paper's
    #    "dummy equivalence class" case): who ends up buying the camera?
    result = engine.query("buys(X, camera)?")
    print("\n=== buys(X, camera)? ===")
    for fact in result.sorted():
        print(f"  buys{fact}")

    # 4. The statistics record the relations the algorithm generated --
    #    the paper's comparison measure (Definition 4.2).
    print("\n=== generated relations ===")
    print(result.stats.format_table())


if __name__ == "__main__":
    main()
