"""Social commerce at scale: every strategy on one realistic workload.

The scenario the paper's introduction motivates, scaled up: a social
network of shoppers (friend edges form a sparse random graph with
communities and cycles; idols form a sparse DAG) and a catalogue where
``cheaper`` chains products.  We ask the Example 1.2 style question
"what will this user end up buying?" under every evaluation strategy
and print a side-by-side comparison of answers, relation sizes, tuples
examined, and wall-clock time.

Run:  python examples/social_commerce.py
"""

import time

from repro import Database, Engine, parse_program
from repro.datalog.errors import EvaluationError
from repro.workloads.generators import chain, random_dag, random_graph

PROGRAM = """
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- idol(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
"""

PEOPLE = 150
PRODUCTS = 60


def build_database() -> Database:
    friends = random_graph(PEOPLE, 2 * PEOPLE, seed=42, prefix="user")
    idols = random_dag(PEOPLE, PEOPLE // 2, seed=43, prefix="user")
    price_chain = chain(PRODUCTS, "item")  # item_i cheaper than item_{i+1}
    matches = [
        (f"user{i * 7 % PEOPLE}", f"item{(i * 13) % PRODUCTS}")
        for i in range(PEOPLE // 3)
    ]
    return Database.from_facts(
        {
            "friend": friends,
            "idol": idols,
            "cheaper": price_chain,
            "perfectFor": matches,
        }
    )


def main() -> None:
    parsed = parse_program(PROGRAM)
    db = build_database()
    engine = Engine(parsed.program, db)

    print(f"database: {db.total_tuples()} tuples, "
          f"{len(db.distinct_constants())} constants")
    report = engine.report("buys")
    print(report.explain())

    query = "buys(user0, Y)?"
    print(f"\nquery: {query}\n")
    header = (
        f"{'strategy':>10}  {'answers':>7}  {'largest relation':>22}  "
        f"{'examined':>9}  {'time':>9}"
    )
    print(header)
    print("-" * len(header))

    reference = None
    for strategy in ("separable", "magic", "seminaive", "naive", "counting"):
        start = time.perf_counter()
        try:
            result = engine.query(query, strategy=strategy)
        except EvaluationError as exc:
            print(f"{strategy:>10}  {type(exc).__name__}")
            continue
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = result.answers
        status = "" if result.answers == reference else "  MISMATCH!"
        name, size = result.stats.largest_relation()
        largest = f"{size} ({name})"
        print(
            f"{strategy:>10}  {len(result.answers):>7}  {largest:>22}  "
            f"{result.stats.tuples_examined:>9}  {elapsed:>8.4f}s{status}"
        )

    print(
        "\n(cyclic friend graph: Counting is expected to fail with "
        "CyclicDataError or report inapplicability -- the paper's "
        "Section 4 point.)"
    )


if __name__ == "__main__":
    main()
