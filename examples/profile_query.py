"""Profiling a query: the telemetry pipeline end to end.

This example mirrors examples/explain_answers.py but asks a different
question: not *why* is each answer true, but *what did answering
cost*.  It profiles the Example 1.2 recursion under two strategies,
prints the EXPLAIN ANALYZE report, streams the raw event log to a
JSONL file, replays it, and shows the exporters produce byte-identical
output from the live and replayed traces -- which is what makes a
shipped event log a faithful substitute for being there.

Run:  python examples/profile_query.py
"""

import json
import tempfile
from pathlib import Path

from repro import Database, parse_program
from repro.engine import Engine
from repro.observability import (
    JsonlFileSink,
    replay_file,
    to_chrome_trace,
    to_metrics_text,
)

PROGRAM = """
% Example 1.2: friends propagate purchases; cheaper products follow.
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
"""

DATABASE = {
    "friend": [("tom", "sue"), ("sue", "ann")],
    "cheaper": [("mug", "vase"), ("spoon", "mug")],
    "perfectFor": [("ann", "vase"), ("tom", "radio")],
}


def main() -> None:
    parsed = parse_program(PROGRAM)
    db = Database.from_facts(DATABASE)
    workdir = Path(tempfile.mkdtemp(prefix="repro-profile-"))

    # -- 1. profile the query, streaming events as we go ---------------
    events_path = workdir / "run.jsonl"
    sink = JsonlFileSink(events_path)
    engine = Engine(parsed.program, db)
    profile = engine.profile("buys(tom, Y)?", sink=sink)
    sink.close()

    print(profile.render_text())
    print()

    # -- 2. the same run, as a Perfetto-loadable chrome trace ----------
    trace_path = workdir / "run.trace.json"
    trace_path.write_text(json.dumps(profile.to_chrome_trace()))
    print(f"chrome trace written to {trace_path}")
    print("  (load it at https://ui.perfetto.dev)")

    # -- 3. ...and as Prometheus metrics -------------------------------
    print("\nfinal counter totals (Prometheus exposition, excerpt):")
    for line in profile.to_metrics_text().splitlines():
        if line.startswith("repro_") and "rule" not in line:
            print(f"  {line}")

    # -- 4. replay the event log; exporters cannot tell the difference -
    replayed = replay_file(events_path)
    live_chrome = json.dumps(to_chrome_trace(profile.tracer),
                             sort_keys=True)
    replayed_chrome = json.dumps(to_chrome_trace(replayed),
                                 sort_keys=True)
    assert live_chrome == replayed_chrome
    assert to_metrics_text(profile.tracer) == to_metrics_text(replayed)
    print(f"\nevent log {events_path} replays byte-identically "
          f"({len(json.loads(live_chrome)['traceEvents'])} trace events)")

    # -- 5. compare strategies on the same query -----------------------
    print("\nstrategy comparison (same query, fresh engines):")
    for strategy in ("separable", "magic", "seminaive"):
        eng = Engine(parsed.program, Database.from_facts(DATABASE))
        p = eng.profile("buys(tom, Y)?", strategy=strategy)
        stats = p.stats
        print(
            f"  {strategy:>10}: max_relation={stats.max_relation_size:<4} "
            f"examined={stats.tuples_examined:<5} "
            f"fanout={stats.join_fanout:.3f}"
        )


if __name__ == "__main__":
    main()
