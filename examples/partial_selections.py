"""Partial selections and the Lemma 2.1 rewrite, on Example 2.4.

The paper's ternary recursion has a two-column equivalence class, so
the query ``t(c, Y, Z)?`` binds only *part* of class e_1 and is not a
full selection.  Lemma 2.1 rewrites the recursion into ``t_full`` and
``t_part`` so that sideways information passing turns the query into a
union of full selections.  This example prints the explicit rewrite,
the compiled plans for both halves, and verifies the answers against
semi-naive materialization.

Run:  python examples/partial_selections.py
"""

from repro import Database, parse_program, seminaive_evaluate
from repro.core import (
    classify_selection,
    compile_plan,
    compile_selection,
    evaluate_separable,
    require_separable,
)
from repro.core.rewrite import choose_rewrite_class, rewrite_partial_selection
from repro.datalog.parser import parse_atom

PROGRAM = """
% Example 2.4 of the paper.
t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
t(X, Y, Z) :- t(X, Y, W) & b(W, Z).
t(X, Y, Z) :- t0(X, Y, Z).
"""

DATABASE = {
    "a": [
        ("c", "d", "e", "f"),
        ("e", "f", "g", "h"),
        ("c", "x", "e", "f"),
        ("g", "h", "c", "d"),  # a cycle through class e_1
    ],
    "b": [("p", "q"), ("q", "r"), ("z", "p")],
    "t0": [("g", "h", "p"), ("e", "f", "z"), ("c", "d", "z")],
}


def main() -> None:
    program = parse_program(PROGRAM).program
    db = Database.from_facts(DATABASE)
    analysis = require_separable(program, "t")

    query = parse_atom("t(c, Y, Z)")
    selection = classify_selection(analysis, query)
    print(f"query {query}? is a full selection: {selection.is_full}")
    print(
        "bound columns:",
        sorted(p + 1 for p in selection.bound),
        "| class e_1 columns:",
        [p + 1 for p in analysis.classes[0].positions],
    )

    # The explicit Lemma 2.1 program.
    cls = choose_rewrite_class(analysis, set(selection.bound))
    rewritten = rewrite_partial_selection(analysis, cls)
    print("\n=== Lemma 2.1 rewrite (t_full / t_part) ===")
    print(rewritten)

    # The two compiled plans the evaluation actually uses.
    print("\n=== plan for the t_full half (seeds via the sideways pass) ===")
    print(compile_plan(analysis, selected_class=cls).describe())

    from repro.core.rewrite import program_without_class

    part_analysis = require_separable(
        program_without_class(analysis, cls), "t"
    )
    part_selection = classify_selection(part_analysis, query)
    print("\n=== plan for the t_part half (selection now persistent) ===")
    print(compile_selection(part_selection).describe())

    # Evaluate and verify.
    answers = evaluate_separable(program, db, query, analysis=analysis)
    oracle = {
        fact
        for fact in seminaive_evaluate(program, db).tuples("t")
        if fact[0] == "c"
    }
    print("\n=== answers ===")
    for fact in sorted(answers):
        print(f"  t{fact}")
    print(f"\nmatches semi-naive materialization: {set(answers) == oracle}")


if __name__ == "__main__":
    main()
