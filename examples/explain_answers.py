"""Explaining answers: the paper's justifications J(a), live.

Section 3.4 of the paper proves the Separable algorithm correct by
tracking, for each tuple entering a carry relation, which rule
application produced it -- the *justification* J(a).  This example runs
a traced evaluation over the Example 1.2 recursion, prints J(a) for
every answer, rebuilds the expansion string with that derivation
(Procedure Expand restricted to one rule sequence), and shows that
evaluating the string really does produce the answer -- Lemma 3.1,
executed.

Run:  python examples/explain_answers.py
"""

from repro import Database, parse_program
from repro.core import explain
from repro.datalog.atoms import Atom
from repro.datalog.expansion import string_for_derivation
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant

PROGRAM = """
% Example 1.2: friends propagate purchases; cheaper products follow.
buys(X, Y) :- friend(X, W) & buys(W, Y).
buys(X, Y) :- buys(X, W) & cheaper(Y, W).
buys(X, Y) :- perfectFor(X, Y).
"""

DATABASE = {
    "friend": [("tom", "sue"), ("sue", "ann")],
    "cheaper": [("mug", "vase"), ("spoon", "mug")],
    "perfectFor": [("ann", "vase"), ("tom", "radio")],
}


def main() -> None:
    parsed = parse_program(PROGRAM)
    db = Database.from_facts(DATABASE)
    query = parse_atom("buys(tom, Y)")
    definition = parsed.program.definition("buys")

    print(f"query: {query}?\n")
    for answer, justification in sorted(
        explain(parsed.program, db, query).items()
    ):
        print(f"answer buys{answer}")
        print(f"  {justification}")

        # Rebuild the expansion string with derivation J(a) and show it.
        string = string_for_derivation(
            definition,
            Atom("buys", tuple(Constant(v) for v in answer)),
            justification.derivation,
            justification.exit_index,
        )
        print(f"  expansion string: {string}")

        # Lemma 3.1: the answer is in the string's relation.
        produced = string.query().evaluate(db)
        print(f"  string evaluates to the answer: {answer in produced}\n")


if __name__ == "__main__":
    main()
