"""Tracing a parallel query: one Chrome lane per worker process.

A partial selection on Example 2.4's ternary recursion fans out into a
Lemma 2.1 union of full selections -- one branch per sideways-computed
seed.  With a worker pool attached, the branches evaluate in spawned
processes; with a tracer *also* attached, each worker records its own
span tree and ships it home as a TraceFragment the executor stitches
into the parent trace.

This example profiles the same query serially and with 2 workers,
shows the stitched reconciled counter totals are byte-identical to the
serial run's (branch fan-out ships whole branches, so no counter can
drift), and writes a Chrome trace whose process lanes are the actual
worker pids.

Run:  python examples/trace_parallel_query.py
"""

import json
import tempfile
from pathlib import Path

from repro import Database, parse_program
from repro.engine import Engine
from repro.observability import reconciled_counter_totals
from repro.parallel import ParallelConfig, ParallelExecutor

# Example 2.4: classes e1 = {0, 1} (descends through a), e2 = {2}
# (ascends through b).  Binding only column 0 is a *partial* selection
# of e1 -- the shape that fans out.
PROGRAM = """
t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).
t(X, Y, Z) :- t(X, Y, W) & b(W, Z).
t(X, Y, Z) :- t0(X, Y, Z).
"""

QUERY = "t(x0, Y, Z)?"


def branching_database(n: int = 6, branches: int = 3) -> Database:
    """Three disjoint a-chains from (x0, y0): three Lemma 2.1 seeds."""
    db = Database()
    for j in range(branches):
        db.add_fact("a", ("x0", "y0", f"p{j}_0", f"q{j}_0"))
        for i in range(n):
            db.add_fact(
                "a",
                (f"p{j}_{i}", f"q{j}_{i}",
                 f"p{j}_{i + 1}", f"q{j}_{i + 1}"),
            )
        for i in range(0, n, 2):
            db.add_fact("t0", (f"p{j}_{i}", f"q{j}_{i}", "z0"))
    for i in range(n):
        db.add_fact("b", (f"z{i}", f"z{i + 1}"))
    return db


def main() -> None:
    parsed = parse_program(PROGRAM)
    engine = Engine(parsed.program, branching_database())
    workdir = Path(tempfile.mkdtemp(prefix="repro-lanes-"))

    # -- 1. the serial reference profile -------------------------------
    serial = engine.profile(QUERY)
    serial_totals = reconciled_counter_totals(serial.tracer)

    # -- 2. the same query, branches shipped to 2 workers --------------
    # Partitioning is disabled (huge min_partition_tuples) so every
    # remote task is a whole branch and the byte-identity contract
    # applies; see docs/parallelism.md for the two axes.
    config = ParallelConfig(
        workers=2, min_branch_tasks=2, min_partition_tuples=1 << 30
    )
    executor = ParallelExecutor(config)
    try:
        parallel = engine.profile(QUERY, parallel=executor)
    finally:
        executor.close()

    assert parallel.result.answers == serial.result.answers

    # -- 3. stitched counters reconcile exactly ------------------------
    stitched_totals = reconciled_counter_totals(parallel.tracer)
    assert stitched_totals == serial_totals, "branch fan-out must not drift"
    print("reconciled counter totals (parallel == serial):")
    for name in sorted(stitched_totals):
        print(f"  {name:<24} {stitched_totals[name]}")
    print()

    # -- 4. one lane per worker pid ------------------------------------
    lanes = parallel.worker_lanes()
    print(f"worker lanes: "
          + ", ".join(f"pid {pid} ({count} fragment(s))"
                      for pid, count in sorted(lanes.items())))
    trace_path = workdir / "lanes.trace.json"
    trace_path.write_text(json.dumps(parallel.to_chrome_trace()))
    events = json.loads(trace_path.read_text())["traceEvents"]
    lane_names = sorted(
        e["args"]["name"] for e in events if e["ph"] == "M"
    )
    print(f"chrome trace lanes: {lane_names}")
    print(f"chrome trace written to {trace_path}")
    print("  (load it at https://ui.perfetto.dev)")

    # -- 5. the text report grows a worker_lanes line ------------------
    report = parallel.render_text(timings=False)
    (line,) = [l for l in report.splitlines()
               if l.startswith("worker_lanes=")]
    print(line)


if __name__ == "__main__":
    main()
