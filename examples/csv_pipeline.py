"""A bulk-data pipeline: CSV in, recursive queries out, CSV back.

Demonstrates the persistence layer on the org-chart scenario: the EDB
is dumped to a CSV directory (as if exported from another system),
reloaded, queried through the engine (which pre-materializes the
derived ``oversees`` predicate before compiling the separable
``chain_of_command`` plan), and the answers are written back both as
CSV and as Datalog facts.

Run:  python examples/csv_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import Database, Engine
from repro.datalog.io import (
    load_csv_directory,
    save_csv_directory,
    save_database,
)
from repro.workloads.scenarios import org_chart


def main() -> None:
    scenario = org_chart(depth=5)
    workdir = Path(tempfile.mkdtemp(prefix="repro_csv_"))

    # 1. Export the raw EDB as CSVs (simulating an external source).
    edb_dir = workdir / "edb"
    save_csv_directory(scenario.database, edb_dir)
    print(f"EDB exported to {edb_dir}:")
    for csv_file in sorted(edb_dir.glob("*.csv")):
        line_count = sum(1 for _ in csv_file.open())
        print(f"  {csv_file.name:<14} {line_count} rows")

    # 2. Reload and query.
    db = load_csv_directory(edb_dir)
    engine = Engine(scenario.program, db)
    result = engine.query("chain_of_command(emp0, Y)?")
    print(
        f"\nchain_of_command(emp0, Y)? -> {len(result.answers)} people "
        f"under emp0 (strategy: {result.strategy})"
    )
    print(result.describe_plan())

    # 3. Write the answers back out, both ways.
    answers_db = Database()
    for fact in result.answers:
        answers_db.add_fact("chain_of_command", fact)
    out_dir = workdir / "answers"
    save_csv_directory(answers_db, out_dir)
    save_database(answers_db, workdir / "answers.dl")
    print(f"\nanswers written to {out_dir}/chain_of_command.csv")
    print(f"            and to {workdir / 'answers.dl'}")

    # 4. Round-trip check.
    reloaded = load_csv_directory(out_dir)
    assert reloaded.tuples("chain_of_command") == result.answers
    print("round trip verified.")


if __name__ == "__main__":
    main()
