"""Shared infrastructure for the benchmark harness.

Each benchmark records a row (experiment, method, parameters, the
generated-relation sizes) through the session-scoped ``series`` fixture;
a terminal-summary hook prints one table per experiment at the end of
the run, next to the paper's claimed shape, so
``pytest benchmarks/ --benchmark-only`` regenerates the Section 4
comparison directly in its output.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

#: experiment id -> the paper's claim, shown above each table.
PAPER_CLAIMS = {
    "E1": (
        "Section 4 / Example 1.1, query buys(a1, Y)?: Generalized "
        "Counting generates Omega(2^n) tuples; Separable is O(n)."
    ),
    "E2": (
        "Section 4 / Example 1.2, query buys(a1, Y)?: Generalized "
        "Magic Sets generates Omega(n^2) tuples; Separable is O(n)."
    ),
    "E3": (
        "Lemma 4.1: Separable generates relations of size at most "
        "n^max(w(e1), k - w(e1)) on any recursion in S^k_p."
    ),
    "E4": (
        "Lemma 4.2: on the S^k_p family with t0 = n^k cross product, "
        "Generalized Magic Sets is Omega(n^k); Separable is O(n^(k-1))."
    ),
    "E5": (
        "Lemma 4.3: with p identical chain relations, Generalized "
        "Counting is Omega(p^n); Separable is O(n)."
    ),
    "E6": (
        "Section 3.1: separability detection is polynomial in the rules "
        "(r, k, l) and independent of the database size n."
    ),
    "E7": (
        "Section 3.2: Separable only looks at tuples along a path from "
        "the selection constant, examining each at most once."
    ),
    "E8": (
        "[Nau88]-style average case (substituted workload): strategy "
        "comparison on random DAGs / graphs / grids."
    ),
    "E9": (
        "Extensions: Section 5 relaxed mode (correct but unfocused -- "
        "examined tuples grow with the whole b relation) vs Magic; "
        "[AU79] pushdown vs Separable on stable columns; algebra vs "
        "direct backend."
    ),
    "SUB": "Substrate micro-benchmarks (index vs scan, semi-naive vs naive).",
}


class SeriesRecorder:
    """Collects (experiment, method, params, measures) rows."""

    def __init__(self) -> None:
        self.rows: list[dict] = []

    def record(self, experiment: str, method: str, **measures) -> None:
        self.rows.append(
            {"experiment": experiment, "method": method, **measures}
        )

    def by_experiment(self) -> dict[str, list[dict]]:
        grouped: dict[str, list[dict]] = defaultdict(list)
        for row in self.rows:
            grouped[row["experiment"]].append(row)
        return grouped


_RECORDER = SeriesRecorder()


@pytest.fixture(scope="session")
def series() -> SeriesRecorder:
    return _RECORDER


def _format_table(rows: list[dict]) -> str:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key != "experiment" and key not in columns:
                columns.append(key)
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [header, "  ".join("-" * widths[c] for c in columns)]
    for row in rows:
        lines.append(
            "  ".join(f"{str(row.get(c, '')):>{widths[c]}}" for c in columns)
        )
    return "\n".join(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    grouped = _RECORDER.by_experiment()
    if not grouped:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("Reproduction series (paper claim vs measured)")
    write("=" * 78)
    for experiment in sorted(grouped):
        write("")
        write(f"[{experiment}] {PAPER_CLAIMS.get(experiment, '')}")
        write(_format_table(grouped[experiment]))
    write("")
