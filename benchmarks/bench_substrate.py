"""Substrate micro-benchmarks: the design choices DESIGN.md calls out.

* index-backed lookups vs full scans in :class:`Relation`;
* the compiled join kernel vs the interpreted join on one hot body;
* semi-naive vs naive fixpoint evaluation on a chain closure;
* the parser on a large generated program.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Relation
from repro.datalog.joins import evaluate_body, evaluate_body_interpreted
from repro.datalog.naive import naive_evaluate
from repro.datalog.parser import parse_program
from repro.datalog.plan_cache import PLAN_CACHE
from repro.datalog.seminaive import seminaive_evaluate
from repro.datalog.terms import Variable
from repro.stats import EvaluationStats
from repro.workloads.generators import chain

TC_TEXT = "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."


@pytest.mark.parametrize("size", [1_000, 10_000])
def test_indexed_lookup(benchmark, series, size):
    rel = Relation("r", 2, [(f"k{i % 97}", f"v{i}") for i in range(size)])
    rel.lookup((0,), ("k0",))  # build the index outside the timer

    result = benchmark(rel.lookup, (0,), ("k13",))
    assert result
    series.record("SUB", "indexed-lookup", size=size, hits=len(result))


@pytest.mark.parametrize("size", [1_000, 10_000])
def test_scan_lookup(benchmark, series, size):
    rel = Relation("r", 2, [(f"k{i % 97}", f"v{i}") for i in range(size)])

    def scan():
        return [t for t in rel if t[0] == "k13"]

    result = benchmark(scan)
    assert result
    series.record("SUB", "scan-lookup", size=size, hits=len(result))


@pytest.mark.parametrize("path", ["compiled", "interpreted"])
def test_join_kernel(benchmark, series, path):
    """One two-atom join body, compiled-kernel vs interpreted.

    The body ``e(X, W) & e(W, Y)`` over ``chain(400)`` is the inner
    step every fixpoint evaluator repeats; the compiled cell reuses one
    cached plan across benchmark rounds (exactly the steady state the
    plan cache produces inside a fixpoint loop).
    """
    db = Database.from_facts({"e": chain(400)})
    x, w, y = Variable("X"), Variable("W"), Variable("Y")
    body = (Atom("e", (x, w)), Atom("e", (w, y)))
    if path == "compiled":
        PLAN_CACHE.clear()

        def run():
            return sum(1 for _ in evaluate_body(db, body, {}))
    else:
        def run():
            return sum(1 for _ in evaluate_body_interpreted(db, body, {}))

    count = benchmark(run)
    assert count == 398
    series.record("SUB", f"join-kernel-{path}", solutions=count)


@pytest.mark.parametrize("n", [30, 60])
def test_seminaive_chain_closure(benchmark, series, n):
    program = parse_program(TC_TEXT).program
    db = Database.from_facts({"e": chain(n)})

    def run():
        stats = EvaluationStats()
        seminaive_evaluate(program, db, stats=stats)
        return stats

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    series.record(
        "SUB", "seminaive-tc", n=n, produced=stats.tuples_produced
    )


@pytest.mark.parametrize("n", [30, 60])
def test_naive_chain_closure(benchmark, series, n):
    program = parse_program(TC_TEXT).program
    db = Database.from_facts({"e": chain(n)})

    def run():
        stats = EvaluationStats()
        naive_evaluate(program, db, stats=stats)
        return stats

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    series.record("SUB", "naive-tc", n=n, produced=stats.tuples_produced)


def test_parser_large_program(benchmark, series):
    lines = [
        f"p{i}(X, Y) :- q{i}(X, W) & r{i}(W, Y)." for i in range(300)
    ]
    lines += [f"q{i}(c{i}, c{i + 1})." for i in range(300)]
    text = "\n".join(lines)

    parsed = benchmark(parse_program, text)
    assert len(parsed.program) == 300
    series.record("SUB", "parse", statements=600)
