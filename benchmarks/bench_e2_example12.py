"""E2 -- Section 4 on Example 1.2: Magic Omega(n^2) vs Separable O(n).

The paper's database: ``friend`` = chain over a_1..a_n, ``cheaper``
descends through b_n..b_1, ``perfectFor`` = {(a_n, b_n)}.  The magic
set reaches every a_i, and the rewritten ``buys`` must materialize all
n^2 tuples (a_i, b_j); Separable builds two monadic relations of size
n.  (Counting is inapplicable here: rule r2's binding passes through
unchanged -- see tests/rewriting/test_counting.py.)
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.parser import parse_atom
from repro.rewriting.magic import evaluate_magic
from repro.stats import EvaluationStats
from repro.workloads.paper import example_1_2_database, example_1_2_program

QUERY = parse_atom("buys(a1, Y)")
MAGIC_NS = [8, 16, 32, 64, 128]
LINEAR_NS = [8, 16, 32, 64, 128, 512]


def _run_magic(program, db):
    stats = EvaluationStats()
    answers = evaluate_magic(program, db, QUERY, stats=stats)
    return answers, stats


def _run_separable(program, db, analysis):
    stats = EvaluationStats()
    answers = evaluate_separable(
        program, db, QUERY, analysis=analysis, stats=stats
    )
    return answers, stats


@pytest.mark.parametrize("n", MAGIC_NS)
def test_e2_magic(benchmark, series, n):
    program = example_1_2_program()
    db = example_1_2_database(n)
    answers, stats = benchmark.pedantic(
        _run_magic, args=(program, db), rounds=3, iterations=1
    )
    assert stats.relation_sizes["buys__bf"] == n * n
    assert len(answers) == n
    series.record(
        "E2",
        "magic",
        n=n,
        max_relation=stats.max_relation_size,
        rewritten_t=stats.relation_sizes["buys__bf"],
    )


@pytest.mark.parametrize("n", LINEAR_NS)
def test_e2_separable(benchmark, series, n):
    program = example_1_2_program()
    db = example_1_2_database(n)
    analysis = require_separable(program, "buys")
    answers, stats = benchmark.pedantic(
        _run_separable, args=(program, db, analysis), rounds=3, iterations=1
    )
    assert stats.max_relation_size <= n
    assert len(answers) == n
    series.record(
        "E2", "separable", n=n, max_relation=stats.max_relation_size
    )
