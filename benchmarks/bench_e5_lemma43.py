"""E5 -- Lemma 4.3: Generalized Counting is Omega(p^n) on S^k_p.

All p rules carry the identical chain relation, so every length-l rule
sequence is a distinct derivation path and ``count`` holds
sum_{l<n} p^l tuples -- the per-path bookkeeping Theorem 2.1 proves
unnecessary for separable recursions, where Separable stays at O(n).
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.parser import parse_atom
from repro.rewriting.counting import evaluate_counting
from repro.stats import EvaluationStats
from repro.workloads.paper import lemma_4_3_database, lemma_4_3_program

K = 2
QUERY = parse_atom("t(c1, Y)")
COUNTING_CASES = [(4, 2), (6, 2), (8, 2), (4, 3), (6, 3), (5, 4)]
SEPARABLE_CASES = COUNTING_CASES + [(64, 2), (64, 4)]


def _run_counting(program, db):
    stats = EvaluationStats()
    answers = evaluate_counting(program, db, QUERY, stats=stats)
    return answers, stats


def _run_separable(program, db, analysis):
    stats = EvaluationStats()
    answers = evaluate_separable(
        program, db, QUERY, analysis=analysis, stats=stats
    )
    return answers, stats


@pytest.mark.parametrize("n,p", COUNTING_CASES)
def test_e5_counting(benchmark, series, n, p):
    program = lemma_4_3_program(K, p)
    db = lemma_4_3_database(n, K, p)
    answers, stats = benchmark.pedantic(
        _run_counting, args=(program, db), rounds=3, iterations=1
    )
    expected = sum(p**level for level in range(n))
    assert stats.relation_sizes["count"] == expected
    assert answers
    series.record(
        "E5",
        "counting",
        n=n,
        p=p,
        count_size=stats.relation_sizes["count"],
        max_relation=stats.max_relation_size,
    )


@pytest.mark.parametrize("n,p", SEPARABLE_CASES)
def test_e5_separable(benchmark, series, n, p):
    program = lemma_4_3_program(K, p)
    db = lemma_4_3_database(n, K, p)
    analysis = require_separable(program, "t")
    answers, stats = benchmark.pedantic(
        _run_separable, args=(program, db, analysis), rounds=3, iterations=1
    )
    assert stats.max_relation_size <= n + 1
    assert answers
    series.record(
        "E5",
        "separable",
        n=n,
        p=p,
        max_relation=stats.max_relation_size,
    )
