"""E7 -- Section 3.2's focus claim: work proportional to the reachable
part, each tuple examined at most once.

The database is a small chain reachable from the selection constant
plus a large irrelevant component.  Separable's ``tuples_examined``
(base tuples fetched by index lookups) must track the reachable size,
not the database size; the unfocused semi-naive baseline scales with
the whole database.
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom
from repro.datalog.seminaive import seminaive_evaluate
from repro.rewriting.magic import evaluate_magic
from repro.stats import EvaluationStats
from repro.workloads.generators import chain
from repro.workloads.paper import example_1_1_program

QUERY = parse_atom("buys(a0, Y)")
REACHABLE = 10
DISTRACTOR_SIZES = [100, 1000, 10_000]


def build(distractors):
    reachable = chain(REACHABLE, "a")
    irrelevant = chain(distractors, "z")
    db = Database.from_facts(
        {
            "friend": reachable + irrelevant,
            "idol": [],
            "perfectFor": [
                (f"a{REACHABLE - 1}", "thing"),
                (f"z{distractors // 2}", "other"),
            ],
        }
    )
    db.ensure("idol", 2)
    return db


def _run_separable(program, db, analysis):
    stats = EvaluationStats()
    evaluate_separable(program, db, QUERY, analysis=analysis, stats=stats)
    return stats


def _run_magic(program, db):
    stats = EvaluationStats()
    evaluate_magic(program, db, QUERY, stats=stats)
    return stats


def _run_seminaive(program, db):
    stats = EvaluationStats()
    materialized = seminaive_evaluate(program, db, stats=stats)
    return stats, materialized


@pytest.mark.parametrize("distractors", DISTRACTOR_SIZES)
def test_e7_separable_focus(benchmark, series, distractors):
    program = example_1_1_program()
    db = build(distractors)
    analysis = require_separable(program, "buys")
    stats = benchmark.pedantic(
        _run_separable, args=(program, db, analysis), rounds=3, iterations=1
    )
    # Examined tuples bounded by the reachable component, with a small
    # constant factor -- independent of the distractor size.
    assert stats.tuples_examined <= 4 * REACHABLE
    series.record(
        "E7",
        "separable",
        distractors=distractors,
        examined=stats.tuples_examined,
    )


@pytest.mark.parametrize("distractors", DISTRACTOR_SIZES)
def test_e7_magic_focus(benchmark, series, distractors):
    """Magic focuses too (the paper: the algorithms are 'equivalent in
    that respect'); only the relation sizes differ."""
    program = example_1_1_program()
    db = build(distractors)
    stats = benchmark.pedantic(
        _run_magic, args=(program, db), rounds=3, iterations=1
    )
    assert stats.relation_sizes["magic_buys__bf"] <= REACHABLE
    series.record(
        "E7",
        "magic",
        distractors=distractors,
        examined=stats.tuples_examined,
    )


@pytest.mark.parametrize("distractors", DISTRACTOR_SIZES)
def test_e7_seminaive_unfocused(benchmark, series, distractors):
    """The unfocused baseline materializes everything: its examined
    count grows with the distractor component."""
    program = example_1_1_program()
    db = build(distractors)
    stats, materialized = benchmark.pedantic(
        _run_seminaive, args=(program, db), rounds=3, iterations=1
    )
    assert stats.tuples_examined >= distractors
    series.record(
        "E7",
        "seminaive",
        distractors=distractors,
        examined=stats.tuples_examined,
    )
