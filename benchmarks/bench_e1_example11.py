"""E1 -- Section 4 on Example 1.1: Counting Omega(2^n) vs Separable O(n).

The paper's database: ``friend`` and ``idol`` both hold the chain
(a_1, a_2) ... (a_{n-1}, a_n); ``perfectFor`` = {(a_n, b_n)}.  On the
query ``buys(a1, Y)?`` the Generalized Counting Method builds a
``count`` relation with one tuple per derivation path (2^n - 1 of
them: "a 30 tuple database can generate a several gigabyte relation"),
while Separable and Magic build only linear-size relations.
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.parser import parse_atom
from repro.rewriting.counting import evaluate_counting
from repro.rewriting.magic import evaluate_magic
from repro.stats import EvaluationStats
from repro.workloads.paper import example_1_1_database, example_1_1_program

QUERY = parse_atom("buys(a1, Y)")
COUNTING_NS = [4, 6, 8, 10, 12]
LINEAR_NS = [4, 6, 8, 10, 12, 100, 400]


def _run_counting(program, db):
    stats = EvaluationStats()
    answers = evaluate_counting(program, db, QUERY, stats=stats)
    return answers, stats


def _run_separable(program, db, analysis):
    stats = EvaluationStats()
    answers = evaluate_separable(
        program, db, QUERY, analysis=analysis, stats=stats
    )
    return answers, stats


def _run_magic(program, db):
    stats = EvaluationStats()
    answers = evaluate_magic(program, db, QUERY, stats=stats)
    return answers, stats


@pytest.mark.parametrize("n", COUNTING_NS)
def test_e1_counting(benchmark, series, n):
    program = example_1_1_program()
    db = example_1_1_database(n)
    answers, stats = benchmark.pedantic(
        _run_counting, args=(program, db), rounds=3, iterations=1
    )
    assert stats.relation_sizes["count"] == 2**n - 1
    assert answers == {("a1", f"b{n}")}
    series.record(
        "E1",
        "counting",
        n=n,
        max_relation=stats.max_relation_size,
        count_size=stats.relation_sizes["count"],
    )


@pytest.mark.parametrize("n", LINEAR_NS)
def test_e1_separable(benchmark, series, n):
    program = example_1_1_program()
    db = example_1_1_database(n)
    analysis = require_separable(program, "buys")
    answers, stats = benchmark.pedantic(
        _run_separable, args=(program, db, analysis), rounds=3, iterations=1
    )
    assert stats.max_relation_size <= n
    assert answers == {("a1", f"b{n}")}
    series.record(
        "E1", "separable", n=n, max_relation=stats.max_relation_size
    )


@pytest.mark.parametrize("n", LINEAR_NS)
def test_e1_magic(benchmark, series, n):
    """Magic is also linear here (one bound column, monadic magic set):
    the paper's Example 1.1 blowup is specific to Counting."""
    program = example_1_1_program()
    db = example_1_1_database(n)
    answers, stats = benchmark.pedantic(
        _run_magic, args=(program, db), rounds=3, iterations=1
    )
    assert answers == {("a1", f"b{n}")}
    series.record(
        "E1", "magic", n=n, max_relation=stats.max_relation_size
    )
