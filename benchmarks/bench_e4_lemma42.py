"""E4 -- Lemma 4.2: Generalized Magic Sets is Omega(n^k) on S^k_p.

The adversarial family: ``a1`` is a chain over c_1..c_n, the other
``a_i`` are empty, and ``t0`` holds the full n^k cross product.  The
magic set reaches all n constants, so the guarded base rule copies all
of ``t0`` into the rewritten ``t`` -- n^k tuples -- while Separable
only materializes seen_1 (n tuples) and seen_2 (at most n^(k-1)).
"""

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.parser import parse_atom
from repro.rewriting.magic import evaluate_magic
from repro.stats import EvaluationStats
from repro.workloads.paper import lemma_4_2_database, lemma_4_2_program

P = 2
CASES = [(4, 2), (8, 2), (16, 2), (4, 3), (8, 3)]


def query_for(k):
    return parse_atom(
        "t(c1, " + ", ".join(f"Q{j}" for j in range(k - 1)) + ")"
    )


def _run_magic(program, db, query):
    stats = EvaluationStats()
    answers = evaluate_magic(program, db, query, stats=stats)
    return answers, stats


def _run_separable(program, db, query, analysis):
    stats = EvaluationStats()
    answers = evaluate_separable(
        program, db, query, analysis=analysis, stats=stats
    )
    return answers, stats


@pytest.mark.parametrize("n,k", CASES)
def test_e4_magic(benchmark, series, n, k):
    program = lemma_4_2_program(k, P)
    db = lemma_4_2_database(n, k, P)
    query = query_for(k)
    answers, stats = benchmark.pedantic(
        _run_magic, args=(program, db, query), rounds=3, iterations=1
    )
    rewritten = f"t__b{'f' * (k - 1)}"
    assert stats.relation_sizes[rewritten] == n**k
    assert len(answers) == n ** (k - 1)
    series.record(
        "E4",
        "magic",
        n=n,
        k=k,
        n_to_k=n**k,
        max_relation=stats.max_relation_size,
    )


@pytest.mark.parametrize("n,k", CASES)
def test_e4_separable(benchmark, series, n, k):
    program = lemma_4_2_program(k, P)
    db = lemma_4_2_database(n, k, P)
    query = query_for(k)
    analysis = require_separable(program, "t")
    answers, stats = benchmark.pedantic(
        _run_separable,
        args=(program, db, query, analysis),
        rounds=3,
        iterations=1,
    )
    assert stats.max_relation_size <= n ** max(1, k - 1)
    assert len(answers) == n ** (k - 1)
    series.record(
        "E4",
        "separable",
        n=n,
        k=k,
        n_to_k=n**k,
        max_relation=stats.max_relation_size,
    )
