"""E9 -- extension ablations beyond the paper's core comparison.

* **relaxed vs magic** on the Section 5 condition-4 violator: the
  relaxed Separable mode is correct but pays the unfocused sideways
  pass; Magic Sets is the paper's recommended fallback.  Both are
  timed on a chain workload with a large half-relevant ``b`` relation.
* **pushdown vs separable** on a persistent-column selection: the
  [AU79] rewrite and the Separable dummy-class plan coincide
  semantically; the ablation measures the constant-factor difference
  between rewritten-program semi-naive evaluation and the compiled
  carry loops.
* **algebra vs direct backend**: the same compiled plan through the
  relational-algebra interpreter and the index-backed evaluator.
"""

import pytest

from repro.core.algebra import execute_plan_algebra
from repro.core.api import evaluate_separable
from repro.core.compiler import compile_selection
from repro.core.detection import require_separable
from repro.core.evaluator import execute_plan
from repro.core.selections import classify_selection
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom
from repro.rewriting.magic import evaluate_magic
from repro.rewriting.selection_push import evaluate_pushed
from repro.stats import EvaluationStats
from repro.workloads.generators import chain
from repro.workloads.paper import (
    example_1_1_program,
    section_5_nonseparable_program,
)


def _section5_db(n):
    return Database.from_facts(
        {
            "a": chain(n, "x"),
            "t0": [(f"x{n - 1}", "y0")],
            "b": chain(n, "y") + chain(n, "zz"),  # half of b irrelevant
        }
    )


@pytest.mark.parametrize("n", [16, 64])
def test_e9_relaxed_on_section5(benchmark, series, n):
    program = section_5_nonseparable_program()
    db = _section5_db(n)
    query = parse_atom("t(x0, Y)")

    def run():
        stats = EvaluationStats()
        answers = evaluate_separable(
            program, db, query, stats=stats, allow_disconnected=True
        )
        return answers, stats

    answers, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    reference = evaluate_magic(program, db, query)
    assert answers == reference
    series.record(
        "E9",
        "relaxed",
        n=n,
        answers=len(answers),
        examined=stats.tuples_examined,
        max_relation=stats.max_relation_size,
    )


@pytest.mark.parametrize("n", [16, 64])
def test_e9_magic_on_section5(benchmark, series, n):
    program = section_5_nonseparable_program()
    db = _section5_db(n)
    query = parse_atom("t(x0, Y)")

    def run():
        stats = EvaluationStats()
        answers = evaluate_magic(program, db, query, stats=stats)
        return answers, stats

    answers, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    series.record(
        "E9",
        "magic",
        n=n,
        answers=len(answers),
        examined=stats.tuples_examined,
        max_relation=stats.max_relation_size,
    )


def _pers_workload(n):
    edges = chain(n, "u")
    db = Database.from_facts(
        {
            "friend": edges,
            "idol": [],
            "perfectFor": [(f"u{i}", "thing") for i in range(0, n, 4)],
        }
    )
    db.ensure("idol", 2)
    return db


@pytest.mark.parametrize("n", [64, 256])
@pytest.mark.parametrize("method", ["separable", "pushdown"])
def test_e9_pushdown_vs_separable(benchmark, series, method, n):
    program = example_1_1_program()
    db = _pers_workload(n)
    query = parse_atom("buys(X, thing)")
    evaluator = (
        evaluate_separable if method == "separable" else evaluate_pushed
    )

    def run():
        stats = EvaluationStats()
        answers = evaluator(program, db, query, stats=stats)
        return answers, stats

    answers, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert answers  # sanity: nonempty
    series.record(
        "E9",
        method,
        n=n,
        answers=len(answers),
        max_relation=stats.max_relation_size,
    )


@pytest.mark.parametrize("style", ["basic", "supplementary"])
def test_e9_magic_variants(benchmark, series, style):
    """Both Magic Sets variants on Example 1.2's adversarial database:
    same answers, same n^2 shape, different constant factors."""
    from repro.workloads.paper import (
        example_1_2_database,
        example_1_2_program,
    )

    n = 24
    program = example_1_2_program()
    db = example_1_2_database(n)
    query = parse_atom("buys(a1, Y)")

    def run():
        stats = EvaluationStats()
        answers = evaluate_magic(program, db, query, stats=stats,
                                 style=style)
        return answers, stats

    answers, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.relation_sizes["buys__bf"] == n * n
    assert len(answers) == n
    series.record(
        "E9",
        f"magic-{style}",
        n=n,
        max_relation=stats.max_relation_size,
    )


@pytest.mark.parametrize("backend", ["direct", "algebra"])
def test_e9_backend_comparison(benchmark, series, backend):
    program = example_1_1_program()
    n = 200
    db = _pers_workload(n)
    query = parse_atom("buys(u0, Y)")
    analysis = require_separable(program, "buys")
    selection = classify_selection(analysis, query)
    plan = compile_selection(selection)
    runner = execute_plan if backend == "direct" else execute_plan_algebra

    result = benchmark.pedantic(
        lambda: runner(plan, db, [selection.seed]), rounds=3, iterations=1
    )
    assert result
    series.record("E9", f"backend-{backend}", n=n, answers=len(result))
