"""E6 -- Section 3.1: detection cost is polynomial in the *rules* only.

The section bounds the four condition checks by O(k^2 r), O(k^2 l r),
O(k^2 r^2) and O(r k^2 l^2), all independent of the database.  We sweep
the rule count ``r``, the arity ``k``, and the body length ``l`` of
synthetic separable recursions, and separately show that detection time
does not change when the database grows from empty to 100k tuples
(the detector never opens it).
"""

import pytest

from repro.core.detection import analyze_recursion
from repro.datalog.parser import parse_program
from repro.workloads.generators import chain


def synthetic_recursion(r: int, k: int, l: int) -> str:
    """A separable recursion with r rules, arity k, bodies of length l.

    Every rule belongs to one class on column 1; the body is a connected
    chain of ``l`` base atoms from the head variable to the new bound
    variable.
    """
    head = ", ".join(f"X{j}" for j in range(1, k + 1))
    body_rest = ", ".join(["W"] + [f"X{j}" for j in range(2, k + 1)])
    rules = []
    for i in range(r):
        hops = [f"a{i}_0(X1, M0)"]
        for step in range(1, l - 1):
            hops.append(f"a{i}_{step}(M{step - 1}, M{step})")
        last = f"M{l - 2}" if l > 1 else "X1"
        body = " & ".join(hops[: max(l - 1, 1)])
        rules.append(
            f"t({head}) :- {body} & eqlink{i}({last}, W) & t({body_rest})."
        )
    rules.append(f"t({head}) :- t0({head}).")
    return "\n".join(rules)


@pytest.mark.parametrize("r", [2, 8, 32, 128])
def test_e6_rules_sweep(benchmark, series, r):
    program = parse_program(synthetic_recursion(r, 3, 3)).program
    report = benchmark(analyze_recursion, program, "t")
    assert report.separable
    series.record("E6", "detect", r=r, k=3, l=3, separable=True)


@pytest.mark.parametrize("k", [2, 8, 32])
def test_e6_arity_sweep(benchmark, series, k):
    program = parse_program(synthetic_recursion(4, k, 3)).program
    report = benchmark(analyze_recursion, program, "t")
    assert report.separable
    series.record("E6", "detect", r=4, k=k, l=3, separable=True)


@pytest.mark.parametrize("l", [2, 8, 32])
def test_e6_body_sweep(benchmark, series, l):
    program = parse_program(synthetic_recursion(4, 3, l)).program
    report = benchmark(analyze_recursion, program, "t")
    assert report.separable
    series.record("E6", "detect", r=4, k=3, l=l, separable=True)


@pytest.mark.parametrize("db_tuples", [0, 100_000])
def test_e6_database_independence(benchmark, series, db_tuples):
    """Detection is a compile-time check: the EDB never matters.

    (The Database object is built but the detector takes only the
    program; the sweep documents that the 'n' of Definition 4.2 does
    not appear in detection cost at all.)
    """
    from repro.datalog.database import Database

    program = parse_program(synthetic_recursion(8, 3, 3)).program
    db = Database.from_facts(
        {"a0_0": chain(db_tuples + 1)} if db_tuples else {}
    )
    assert db.total_tuples() == db_tuples
    report = benchmark(analyze_recursion, program, "t")
    assert report.separable
    series.record(
        "E6", "detect-vs-db", r=8, k=3, l=3, db_tuples=db_tuples
    )
