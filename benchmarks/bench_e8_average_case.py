"""E8 -- average-case strategy comparison on synthetic graph workloads.

Substitute for the unavailable [Nau88] empirical figures (see
DESIGN.md): transitive-closure and Example 1.2 style queries over
random DAGs, random (cyclic) graphs, and grids, comparing the relation
sizes and times of Separable, Magic, semi-naive, and the no-dedup
ablation.  The expected shape: Separable <= Magic << semi-naive in
generated tuples, with the no-dedup ablation paying duplicate work on
converging paths and failing outright on the cyclic workload.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.errors import CyclicDataError
from repro.datalog.parser import parse_program
from repro.engine import Engine
from repro.workloads.generators import chain, grid, random_dag, random_graph

TC_TEXT = "tc(X, Y) :- e(X, W) & tc(W, Y).\ntc(X, Y) :- e(X, Y)."

WORKLOADS = {
    "dag": lambda: random_dag(60, 150, seed=11),
    "cyclic": lambda: random_graph(60, 150, seed=12),
    "grid": lambda: grid(8, 8),
    "shortcut-chain": lambda: chain(40)
    + [(f"a{i}", f"a{i + 2}") for i in range(38)],
}

START = {"dag": "a0", "cyclic": "a0", "grid": "g0_0", "shortcut-chain": "a0"}

STRATEGIES = ["separable", "magic", "seminaive", "nodedup"]


def make_engine(workload):
    program = parse_program(TC_TEXT).program
    db = Database.from_facts({"e": WORKLOADS[workload]()})
    return Engine(program, db)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_e8_transitive_closure(benchmark, series, workload, strategy):
    engine = make_engine(workload)
    query = f"tc({START[workload]}, Y)?"

    if strategy == "nodedup" and workload == "cyclic":
        with pytest.raises(CyclicDataError):
            engine.query(query, strategy=strategy)

        def run_failing():
            try:
                engine.query(query, strategy=strategy)
            except CyclicDataError:
                return None

        benchmark.pedantic(run_failing, rounds=3, iterations=1)
        series.record(
            "E8", strategy, workload=workload, outcome="CyclicDataError"
        )
        return

    result = benchmark.pedantic(
        lambda: engine.query(query, strategy=strategy),
        rounds=3,
        iterations=1,
    )
    oracle = engine.query(query, strategy="seminaive")
    assert result.answers == oracle.answers
    series.record(
        "E8",
        strategy,
        workload=workload,
        answers=len(result.answers),
        max_relation=result.stats.max_relation_size,
        produced=result.stats.tuples_produced,
    )
