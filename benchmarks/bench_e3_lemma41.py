"""E3 -- Lemma 4.1: Separable is O(n^max(w(e1), k - w(e1))).

We sweep the arity ``k`` and the width ``w`` of the selected class on
recursions of the shape::

    t(X1..Xk) :- a(X1..Xw, W1..Ww) & t(W1..Ww, X(w+1)..Xk).
    t(X1..Xk) :- t0(X1..Xk).

with dense EDBs over n constants, and check the measured maximum
relation size against the lemma's bound: ``carry_1``/``seen_1`` have
``w`` columns (at most n^w tuples) and ``carry_2``/``seen_2`` have
``k - w`` columns (at most n^(k-w)).
"""

import itertools

import pytest

from repro.core.api import evaluate_separable
from repro.core.detection import require_separable
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_program
from repro.stats import EvaluationStats

N = 5
SHAPES = [(2, 1), (3, 1), (3, 2), (4, 1), (4, 2), (4, 3)]


def build(k, w, n):
    head = ", ".join(f"X{j}" for j in range(1, k + 1))
    bound_head = ", ".join(f"X{j}" for j in range(1, w + 1))
    bound_body = ", ".join(f"W{j}" for j in range(1, w + 1))
    rest = ", ".join(f"X{j}" for j in range(w + 1, k + 1))
    body_args = ", ".join(x for x in [bound_body, rest] if x)
    program = parse_program(
        f"t({head}) :- a({bound_head}, {bound_body}) & t({body_args}).\n"
        f"t({head}) :- t0({head})."
    ).program
    consts = [f"c{i}" for i in range(1, n + 1)]
    a_tuples = list(itertools.product(consts, repeat=2 * w))
    t0_tuples = list(itertools.product(consts, repeat=k))
    db = Database.from_facts({"a": a_tuples, "t0": t0_tuples})
    query = parse_atom(
        "t(" + ", ".join(["c1"] * w + [f"Q{j}" for j in range(k - w)]) + ")"
    )
    return program, db, query


def _run(program, db, query, analysis):
    stats = EvaluationStats()
    answers = evaluate_separable(
        program, db, query, analysis=analysis, stats=stats
    )
    return answers, stats


@pytest.mark.parametrize("k,w", SHAPES)
def test_e3_lemma41_bound(benchmark, series, k, w):
    program, db, query = build(k, w, N)
    analysis = require_separable(program, "t")
    assert analysis.classes[0].width == w
    answers, stats = benchmark.pedantic(
        _run, args=(program, db, query, analysis), rounds=3, iterations=1
    )
    bound = N ** max(w, k - w)
    assert stats.max_relation_size <= bound
    series.record(
        "E3",
        "separable",
        k=k,
        w=w,
        n=N,
        bound=bound,
        max_relation=stats.max_relation_size,
        largest=stats.largest_relation()[0],
    )
